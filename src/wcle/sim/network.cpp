#include "wcle/sim/network.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace wcle {

Network::Network(const Graph& g, CongestConfig cfg)
    : g_(&g), cfg_(cfg), drop_rng_(cfg.drop_seed) {
  if (cfg_.bandwidth_bits == 0)
    throw std::invalid_argument("Network: bandwidth_bits must be >= 1");
  if (cfg_.drop_probability < 0.0 || cfg_.drop_probability > 1.0)
    throw std::invalid_argument("Network: drop_probability must be in [0, 1]");
  first_lane_.resize(g.node_count() + 1);
  std::uint64_t acc = 0;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    first_lane_[u] = acc;
    acc += g.degree(u);
  }
  first_lane_[g.node_count()] = acc;
  lanes_.resize(acc);
}

void Network::send(NodeId from, Port port, Message msg) {
  assert(from < g_->node_count());
  assert(port < g_->degree(from));
  assert(msg.bits >= 1);
  metrics_.logical_messages += 1;
  metrics_.total_bits += msg.bits;
  const std::uint64_t lane = lane_index(from, port);
  Lane& l = lanes_[lane];
  l.fifo.push_back(std::move(msg));
  metrics_.max_edge_backlog =
      std::max<std::uint64_t>(metrics_.max_edge_backlog, l.fifo.size());
  if (!l.active) {
    l.active = true;
    active_.push_back(lane);
    ++active_count_;
  }
}

const std::vector<Delivery>& Network::step() {
  delivered_.clear();
  metrics_.rounds += 1;
  const std::uint32_t B = cfg_.bandwidth_bits;

  // Serve one quantum per backlogged directed edge. New sends triggered by the
  // caller happen strictly after step() returns, so iterating a snapshot of
  // the active list is safe; lanes drained this round are compacted out.
  std::uint64_t write = 0;
  const std::uint64_t count = active_.size();
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t lane = active_[i];
    Lane& l = lanes_[lane];
    if (l.fifo.empty()) {
      l.active = false;
      --active_count_;
      continue;
    }
    Message& head = l.fifo.front();
    metrics_.congest_messages += 1;
    metrics_.congest_messages_by_tag[head.tag] += 1;
    l.served_bits += B;
    if (l.served_bits >= head.bits) {
      // Fully transmitted. The fault axis is consulted only now: a dropped
      // message has already paid its congestion bill, it just never reaches
      // the other endpoint. The p == 0 guard keeps the reliable model
      // bit-identical to the pre-fault implementation (no Rng draws).
      if (cfg_.drop_probability > 0.0 &&
          drop_rng_.next_bool(cfg_.drop_probability)) {
        metrics_.dropped_messages += 1;
      } else {
        // Deliver to the other endpoint this round. Recover (from, port)
        // from the lane index by binary search on bases.
        const auto it = std::upper_bound(first_lane_.begin(),
                                         first_lane_.end(), lane);
        const NodeId from = static_cast<NodeId>(
            std::distance(first_lane_.begin(), it) - 1);
        const Port port = static_cast<Port>(lane - first_lane_[from]);
        Delivery d;
        d.dst = g_->neighbor(from, port);
        d.port = g_->mirror_port(from, port);
        d.msg = std::move(head);
        delivered_.push_back(std::move(d));
      }
      l.fifo.pop_front();
      l.served_bits = 0;
    }
    if (l.fifo.empty()) {
      l.active = false;
      --active_count_;
    } else {
      active_[write++] = lane;
    }
  }
  // No sends can interleave with the loop (the caller regains control only
  // after step() returns), so every live lane has been compacted to [0,write).
  active_.resize(write);
  return delivered_;
}

}  // namespace wcle
