// Metrics collected by the CONGEST transport: rounds elapsed, CONGEST message
// count (the unit the paper's bounds are stated in: one B-bit transmission on
// one edge in one round), logical protocol messages, and total declared bits,
// with a per-tag breakdown so benches can attribute cost to protocol stages.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace wcle {

struct Metrics {
  std::uint64_t rounds = 0;
  std::uint64_t congest_messages = 0;  ///< B-bit transmissions (paper's unit)
  std::uint64_t logical_messages = 0;  ///< protocol-level send() calls
  std::uint64_t total_bits = 0;        ///< sum of declared message sizes
  std::uint64_t max_edge_backlog = 0;  ///< peak per-edge queue (congestion)
  std::uint64_t dropped_messages = 0;  ///< messages lost to random-drop axis
  /// Messages suppressed or eaten because an endpoint was crashed/churned
  /// out (crash-stop: dead nodes neither send nor receive).
  std::uint64_t crash_dropped_messages = 0;
  /// Messages eaten by failed links (which still paid the congestion bill).
  std::uint64_t link_dropped_messages = 0;
  /// Data-plane pool gauges (obs): the Network promotes its pool_stats()
  /// footprint and occupancy high-water marks here so every serialization
  /// carries the zero-allocation evidence, not just the tests. Gauge
  /// semantics: since() copies, operator+= takes the max.
  std::uint64_t pool_msg_slots = 0;      ///< message-pool capacity (slots)
  std::uint64_t pool_msg_live_high = 0;  ///< peak messages queued at once
  std::uint64_t pool_id_blocks = 0;      ///< peak arena heap blocks held
  std::uint64_t pool_id_live_high = 0;   ///< peak payload slots outstanding
  std::array<std::uint64_t, 256> congest_messages_by_tag{};

  /// Component-wise difference (this - earlier); used for stage breakdowns.
  Metrics since(const Metrics& earlier) const;

  /// Component-wise accumulation (rounds add; backlog takes the max). Used
  /// to combine metrics of protocols composed from multiple sub-protocols.
  Metrics& operator+=(const Metrics& other);

  std::string summary() const;
};

}  // namespace wcle
