// Message representation for the CONGEST transport. Protocols declare the
// *bit size* of each message themselves (from the model's encoding, e.g. an id
// costs 4*ceil(log2 n) bits); the network charges bandwidth from that
// declaration, fragmenting anything larger than the per-edge budget B into
// ceil(bits/B) CONGEST messages, exactly the accounting Lemma 12 performs.
//
// Since the data-plane rebuild a message no longer owns heap storage: the
// variable-length id list rides as an IdSpan *view*. On send() the transport
// copies the viewed words into its per-Network id arena; on delivery the span
// points into that arena (valid until the next step()). Protocols therefore
// build payloads in reusable scratch buffers and the hot path never touches
// the allocator.
#pragma once

#include <cstdint>
#include <vector>

#include "wcle/graph/graph.hpp"

namespace wcle {

/// A non-owning view of a message's variable-length id list. Vector-like for
/// reading (iteration, indexing, front/back); the storage belongs to the
/// sender until send() returns, and to the transport's arena on delivery
/// (valid until the next step()). Copy out with to_vector() to keep ids.
class IdSpan {
 public:
  IdSpan() = default;
  IdSpan(const std::uint64_t* data, std::size_t size)
      : data_(data), size_(static_cast<std::uint32_t>(size)) {}
  /// Implicit view of a vector the caller keeps alive across the send().
  IdSpan(const std::vector<std::uint64_t>& v)  // NOLINT(runtime/explicit)
      : data_(v.data()), size_(static_cast<std::uint32_t>(v.size())) {}

  const std::uint64_t* data() const noexcept { return data_; }
  std::uint32_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  const std::uint64_t* begin() const noexcept { return data_; }
  const std::uint64_t* end() const noexcept { return data_ + size_; }
  std::uint64_t operator[](std::size_t i) const { return data_[i]; }
  std::uint64_t front() const { return data_[0]; }
  std::uint64_t back() const { return data_[size_ - 1]; }

  std::vector<std::uint64_t> to_vector() const {
    return std::vector<std::uint64_t>(begin(), end());
  }

 private:
  const std::uint64_t* data_ = nullptr;
  std::uint32_t size_ = 0;
};

/// A protocol message. The scalar fields and the id list are interpreted by
/// the owning protocol via `tag`; the transport only reads `tag` and `bits`.
/// Cheap to copy — `ids` is a view (see IdSpan for the storage contract).
struct Message {
  std::uint8_t tag = 0;   ///< protocol discriminator / metrics bucket
  std::uint64_t a = 0;    ///< protocol-defined scalar
  std::uint64_t b = 0;    ///< protocol-defined scalar
  std::uint64_t c = 0;    ///< protocol-defined scalar
  std::uint64_t d = 0;    ///< protocol-defined scalar
  IdSpan ids;             ///< protocol-defined variable-length part (view)
  std::uint32_t bits = 0; ///< declared encoded size; must be >= 1
};

/// A message arriving at `dst` through its local `port` in the current round.
/// Handed out by step() as a view: `msg.ids` points into the transport's id
/// arena and stays valid until the next step() call. Copy ids out to keep
/// them longer.
struct Delivery {
  NodeId dst = 0;
  Port port = 0;
  Message msg;
};

}  // namespace wcle
