// Message representation for the CONGEST transport. Protocols declare the
// *bit size* of each message themselves (from the model's encoding, e.g. an id
// costs 4*ceil(log2 n) bits); the network charges bandwidth from that
// declaration, fragmenting anything larger than the per-edge budget B into
// ceil(bits/B) CONGEST messages, exactly the accounting Lemma 12 performs.
#pragma once

#include <cstdint>
#include <vector>

#include "wcle/graph/graph.hpp"

namespace wcle {

/// A protocol message. The scalar fields and the id list are interpreted by
/// the owning protocol via `tag`; the transport only reads `tag` and `bits`.
struct Message {
  std::uint8_t tag = 0;           ///< protocol discriminator / metrics bucket
  std::uint64_t a = 0;            ///< protocol-defined scalar
  std::uint64_t b = 0;            ///< protocol-defined scalar
  std::uint64_t c = 0;            ///< protocol-defined scalar
  std::uint64_t d = 0;            ///< protocol-defined scalar
  std::vector<std::uint64_t> ids; ///< protocol-defined variable-length part
  std::uint32_t bits = 0;         ///< declared encoded size; must be >= 1
};

/// A message arriving at `dst` through its local `port` in the current round.
struct Delivery {
  NodeId dst = 0;
  Port port = 0;
  Message msg;
};

}  // namespace wcle
