// Synchronous CONGEST transport. Each directed edge carries at most B bits
// per round; protocols `send()` messages through (node, port) pairs — never by
// neighbour identity, honoring the port-numbering model — and drive rounds by
// calling `step()`, which returns that round's deliveries. Congestion is
// modeled for real: each directed edge serves one B-bit quantum per round from
// a FIFO, so oversized or bursty traffic queues exactly as Lemma 12 assumes.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include <memory>

#include "wcle/fault/injector.hpp"
#include "wcle/fault/plan.hpp"
#include "wcle/graph/graph.hpp"
#include "wcle/sim/message.hpp"
#include "wcle/sim/metrics.hpp"
#include "wcle/support/bits.hpp"
#include "wcle/support/rng.hpp"

namespace wcle {

class TraceRecorder;

/// CONGEST bandwidth configuration plus the seeded fault axis: each message,
/// after its bandwidth has been fully served, is lost with probability
/// `drop_probability` (drawn from an Rng seeded by `drop_seed`, so runs are
/// reproducible). The congestion bill is still paid for dropped messages —
/// lossy links consume bandwidth, they just fail to deliver.
struct CongestConfig {
  /// Bits per edge per direction per round (the model's B = Theta(log n)).
  std::uint32_t bandwidth_bits = 0;
  /// Per-message loss probability in [0, 1]; 0 = the reliable model.
  double drop_probability = 0.0;
  /// Seed of the drop stream; together with the deterministic lane-service
  /// order this makes faulty executions bit-reproducible.
  std::uint64_t drop_seed = 0;
  /// Structured faults: crash-stop schedules, link failures, churn windows
  /// (see fault/plan.hpp). An inactive plan costs nothing — the reliable
  /// model stays bit-identical to the pre-fault implementation.
  FaultPlan faults;
  /// Opt-in per-round event recorder (trace/recorder.hpp). Null = tracing
  /// off; the transport then pays one branch per round and nothing else.
  /// Recording never perturbs the execution.
  TraceRecorder* trace = nullptr;

  /// Standard CONGEST budget for an n-node network: enough for one id from
  /// [1, n^4] plus O(log n) control bits — a single "O(log n)-bit message".
  static CongestConfig standard(std::uint64_t n) {
    CongestConfig c;
    c.bandwidth_bits = id_bits(n) + 2 * ceil_log2(n) + 8;
    return c;
  }

  /// The relaxed O(log^3 n) regime of Lemma 12's second bound.
  static CongestConfig wide(std::uint64_t n) {
    const std::uint32_t lg = ceil_log2(n) > 0 ? ceil_log2(n) : 1;
    CongestConfig c;
    c.bandwidth_bits = (id_bits(n) + 2 * lg + 8) * lg * lg;
    return c;
  }

  /// Resolves bandwidth_bits == 0 (the "regime default" sentinel protocols
  /// accept in their optional config parameter) to standard(n), keeping the
  /// fault fields.
  CongestConfig resolved(std::uint64_t n) const {
    CongestConfig c = *this;
    if (c.bandwidth_bits == 0) c.bandwidth_bits = standard(n).bandwidth_bits;
    return c;
  }
};

/// The transport. Owns per-directed-edge FIFOs and all metrics.
class Network {
 public:
  Network(const Graph& g, CongestConfig cfg);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Enqueues `msg` for transmission from `from` through its local `port`.
  /// Requires msg.bits >= 1 and port < degree(from).
  void send(NodeId from, Port port, Message msg);

  /// Advances one synchronous round: every backlogged directed edge serves one
  /// B-bit quantum; fully-served messages are delivered. Returns this round's
  /// deliveries (valid until the next call).
  const std::vector<Delivery>& step();

  /// True when no message is queued or in flight.
  bool idle() const noexcept { return active_count_ == 0; }

  /// Runs step() until idle, dispatching deliveries to `handler`
  /// (callable as handler(const Delivery&)). Returns rounds consumed.
  /// Stops (returning the rounds so far) if `max_rounds` elapse first.
  template <typename Handler>
  std::uint64_t run_until_idle(Handler&& handler,
                               std::uint64_t max_rounds = ~0ull) {
    std::uint64_t used = 0;
    while (!idle() && used < max_rounds) {
      const std::vector<Delivery>& delivered = step();
      ++used;
      for (const Delivery& d : delivered) handler(d);
    }
    return used;
  }

  std::uint64_t round() const noexcept { return metrics_.rounds; }
  const Metrics& metrics() const noexcept { return metrics_; }
  const Graph& graph() const noexcept { return *g_; }
  const CongestConfig& config() const noexcept { return cfg_; }

  /// True when `node` is currently alive (always true on fault-free runs).
  /// Protocols consult this to model crash-stop: a dead node takes no local
  /// steps (the transport already suppresses its traffic either way).
  bool node_up(NodeId node) const {
    return !faults_ || faults_->node_up(node);
  }

  /// Nodes currently alive (n on fault-free runs).
  std::uint64_t up_count() const {
    return faults_ ? faults_->up_count() : g_->node_count();
  }

  /// Reports a node that became a contender/candidate, for the
  /// "contenders" adversary strategy and the trace timeline. No-op on
  /// fault-free untraced runs.
  void note_contender(NodeId node);

  /// Records a protocol phase transition on the trace timeline (attributed
  /// to the upcoming round). No-op when tracing is off.
  void note_phase(const char* label, std::uint64_t value);

  /// The fault exposure of the run so far (empty on fault-free runs);
  /// protocols stash this in their results for the verdict layer.
  FaultOutcome fault_outcome() const {
    return faults_ ? faults_->outcome() : FaultOutcome{};
  }

 private:
  struct Lane {
    std::deque<Message> fifo;
    std::uint32_t served_bits = 0;  ///< bits of the head already transmitted
    bool active = false;            ///< registered in active_ list
  };

  std::uint64_t lane_index(NodeId from, Port port) const noexcept {
    return first_lane_[from] + port;
  }

  const Graph* g_;
  CongestConfig cfg_;
  std::vector<std::uint64_t> first_lane_;  ///< per-node base into lanes_
  std::vector<Lane> lanes_;                ///< one per directed edge
  std::vector<std::uint64_t> active_;      ///< lane indices with traffic
  std::uint64_t active_count_ = 0;
  std::vector<Delivery> delivered_;
  Rng drop_rng_;  ///< consulted only when cfg_.drop_probability > 0
  std::unique_ptr<FaultInjector> faults_;  ///< null when cfg_.faults inactive
  Metrics metrics_;
};

}  // namespace wcle
