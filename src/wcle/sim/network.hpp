// Synchronous CONGEST transport. Each directed edge carries at most B bits
// per round; protocols `send()` messages through (node, port) pairs — never by
// neighbour identity, honoring the port-numbering model — and drive rounds by
// calling `step()`, which returns that round's deliveries. Congestion is
// modeled for real: each directed edge serves one B-bit quantum per round from
// a FIFO, so oversized or bursty traffic queues exactly as Lemma 12 assumes.
//
// Data plane (see README "Architecture"): the node space is partitioned into
// contiguous shards (ShardPlan); each shard owns the message pool, id arena,
// and active-lane list of the lanes leaving its nodes, so a round's service
// stage runs one worker per shard with no shared mutable state. Queued
// messages live in the owning shard's pool; each lane (directed edge) is an
// index-linked FIFO through that pool; variable-length payloads are copied
// into the shard's chunked id arena, which rewinds whenever it drains.
// Deliveries are views into those pools — the steady-state hot path performs
// no heap allocation.
//
// Determinism under sharding (the headline invariant): every lane carries the
// stamp of its latest activation, drawn from one global counter inside the
// single-threaded send() path, so each shard's active list is stamp-ascending
// by construction. The parallel service stage only *completes* messages; all
// RNG-relevant disposal (the drop stream) and delivery emission happen at the
// round barrier after sorting the per-shard candidates by stamp — the
// canonical merge order, which reproduces the exact sequential service order.
// Seed-fixed runs are therefore bit-identical at any shard count.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "wcle/fault/injector.hpp"
#include "wcle/fault/plan.hpp"
#include "wcle/graph/graph.hpp"
#include "wcle/sim/message.hpp"
#include "wcle/sim/metrics.hpp"
#include "wcle/sim/shard.hpp"
#include "wcle/support/bits.hpp"
#include "wcle/support/rng.hpp"

namespace wcle {

class TraceRecorder;

/// CONGEST bandwidth configuration plus the seeded fault axis: each message,
/// after its bandwidth has been fully served, is lost with probability
/// `drop_probability` (drawn from an Rng seeded by `drop_seed`, so runs are
/// reproducible). The congestion bill is still paid for dropped messages —
/// lossy links consume bandwidth, they just fail to deliver.
struct CongestConfig {
  /// Bits per edge per direction per round (the model's B = Theta(log n)).
  std::uint32_t bandwidth_bits = 0;
  /// Per-message loss probability in [0, 1]; 0 = the reliable model.
  double drop_probability = 0.0;
  /// Seed of the drop stream; together with the deterministic lane-service
  /// order this makes faulty executions bit-reproducible.
  std::uint64_t drop_seed = 0;
  /// Worker shards for the round engine. Results are bit-identical at any
  /// value (the canonical stamp merge restores sequential order); only wall
  /// time and pool footprint vary. Clamped silently to [1, node count] —
  /// the CLI layer prints the user-facing clamp warning.
  std::uint32_t shards = 1;
  /// Structured faults: crash-stop schedules, link failures, churn windows
  /// (see fault/plan.hpp). An inactive plan costs nothing — the reliable
  /// model stays bit-identical to the pre-fault implementation.
  FaultPlan faults;
  /// Opt-in per-round event recorder (trace/recorder.hpp). Null = tracing
  /// off; the transport then pays one branch per round and nothing else.
  /// Recording never perturbs the execution.
  TraceRecorder* trace = nullptr;
  /// Sampled tracing: the recorder keeps every K-th round row (events are
  /// always kept). 1 (or 0) = record every round, the pre-sampling format.
  std::uint32_t trace_every = 1;
  /// Per-walk token tracing (schema v2): the recorder keeps walk_hop records
  /// for origins with id % K == 0 (1 = every walk). 0 = off, the default —
  /// the walk engine then never calls the recorder's hop hook.
  std::uint32_t trace_walks = 0;

  /// Standard CONGEST budget for an n-node network: enough for one id from
  /// [1, n^4] plus O(log n) control bits — a single "O(log n)-bit message".
  static CongestConfig standard(std::uint64_t n) {
    CongestConfig c;
    c.bandwidth_bits = id_bits(n) + 2 * ceil_log2(n) + 8;
    return c;
  }

  /// The relaxed O(log^3 n) regime of Lemma 12's second bound.
  static CongestConfig wide(std::uint64_t n) {
    const std::uint32_t lg = ceil_log2(n) > 0 ? ceil_log2(n) : 1;
    CongestConfig c;
    c.bandwidth_bits = (id_bits(n) + 2 * lg + 8) * lg * lg;
    return c;
  }

  /// Resolves bandwidth_bits == 0 (the "regime default" sentinel protocols
  /// accept in their optional config parameter) to standard(n), keeping the
  /// fault fields.
  CongestConfig resolved(std::uint64_t n) const {
    CongestConfig c = *this;
    if (c.bandwidth_bits == 0) c.bandwidth_bits = standard(n).bandwidth_bits;
    return c;
  }
};

/// Chunked bump/free-list arena for message id payloads. Addresses are
/// stable (chunks never move), so IdSpan views into the arena survive
/// arbitrary later allocations. Slots are handed out in power-of-two size
/// classes and recycled through per-class free lists; when every allocation
/// has been released (the network drained a round-batch), the whole arena
/// rewinds to its first chunk, so long runs reuse one footprint instead of
/// fragmenting. Counters are exposed for the no-allocation-per-delivery
/// tests (Network::pool_stats).
class IdArena {
 public:
  /// Returns a slot of capacity >= n words (n >= 1).
  std::uint64_t* alloc(std::uint32_t n);
  /// Releases a slot previously returned by alloc(n) with the same n.
  void release(const std::uint64_t* p, std::uint32_t n);
  /// Rewinds the bump cursor and drops the free lists when nothing is live.
  void maybe_reset();

  std::uint64_t chunk_count() const noexcept {
    return chunks_.size() + oversized_.size();
  }
  std::uint64_t live() const noexcept { return live_; }
  std::uint64_t alloc_calls() const noexcept { return alloc_calls_; }

 private:
  static constexpr std::uint32_t kChunkWords = 1u << 14;  ///< 128 KiB chunks
  static constexpr std::uint32_t kClasses = 32;

  static std::uint32_t size_class(std::uint32_t n) noexcept;

  /// Fixed-size bump chunks. Oversized slots (capacity > kChunkWords) live
  /// in oversized_ — never in bump space, so the cursor cannot wander into
  /// a live dedicated payload; they recycle through the free lists during a
  /// busy period and are returned to the heap on the drain rewind.
  std::vector<std::unique_ptr<std::uint64_t[]>> chunks_;
  std::vector<std::unique_ptr<std::uint64_t[]>> oversized_;
  std::size_t cur_chunk_ = 0;   ///< bump chunk index
  std::uint32_t cur_used_ = 0;  ///< words used in the bump chunk
  std::vector<std::uint64_t*> free_[kClasses];
  bool free_dirty_ = false;  ///< any free list non-empty (cheap reset guard)
  std::uint64_t live_ = 0;
  std::uint64_t alloc_calls_ = 0;
};

/// The transport. Owns the per-shard message pools, the per-directed-edge
/// lane rings, the payload arenas, and all metrics.
class Network {
 public:
  Network(const Graph& g, CongestConfig cfg);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Enqueues `msg` for transmission from `from` through its local `port`:
  /// scalars and the viewed id words are copied into the owning shard's
  /// pools, so the caller's payload storage only needs to outlive this call.
  /// Requires msg.bits >= 1 and port < degree(from).
  void send(NodeId from, Port port, const Message& msg);

  /// Advances one synchronous round: every backlogged directed edge serves one
  /// B-bit quantum (one worker per shard), then the per-shard completions are
  /// merged in stamp order at the barrier for the RNG-relevant disposal.
  /// Returns this round's deliveries as views (valid until the next call —
  /// Delivery::msg.ids points into a shard's id arena).
  const std::vector<Delivery>& step();

  /// True when no message is queued or in flight.
  bool idle() const noexcept {
    std::uint64_t active = 0;
    for (const Shard& sh : shards_) active += sh.active_count;
    return active == 0;
  }

  /// Runs step() until idle, dispatching deliveries to `handler`
  /// (callable as handler(const Delivery&)). Deliveries are passed by
  /// reference — no Message or payload copy per delivery. Returns rounds
  /// consumed. Stops (returning the rounds so far) if `max_rounds` elapse
  /// first.
  template <typename Handler>
  std::uint64_t run_until_idle(Handler&& handler,
                               std::uint64_t max_rounds = ~0ull) {
    std::uint64_t used = 0;
    while (!idle() && used < max_rounds) {
      const std::vector<Delivery>& delivered = step();
      ++used;
      for (const Delivery& d : delivered) handler(d);
    }
    return used;
  }

  std::uint64_t round() const noexcept { return metrics_.rounds; }
  const Metrics& metrics() const noexcept { return metrics_; }
  const Graph& graph() const noexcept { return *g_; }
  const CongestConfig& config() const noexcept { return cfg_; }

  /// The resolved shard partition (cfg.shards clamped to [1, node count]).
  std::uint32_t shard_count() const noexcept { return plan_.shards; }
  std::uint32_t shard_of(NodeId node) const noexcept {
    return plan_.shard_of(node);
  }

  /// Runs fn(s) for every shard — on the executor when this network is
  /// sharded, inline otherwise. Exposed so layers above (the walk engine's
  /// per-shard token buckets) can reuse the transport's worker pool for
  /// their own shard-local stages. `fn` must only touch shard-local state.
  void run_on_shards(const std::function<void(std::uint32_t)>& fn);

  /// Allocation instrumentation of the data-plane pools, summed across
  /// shards. Once a workload's footprint is warmed up, heap_blocks /
  /// msg_slots / delivery_capacity stay flat while deliveries keep flowing —
  /// the no-allocation-per-delivery property the tests pin down. Occupancy
  /// (id_live, msg_live) is shard-invariant; capacity (id_heap_blocks,
  /// msg_slots) is a footprint measurement that legitimately varies with the
  /// shard count, since every shard warms its own pool.
  struct PoolStats {
    std::uint64_t id_heap_blocks = 0;    ///< heap blocks the arenas hold
    std::uint64_t id_alloc_calls = 0;    ///< payload slots handed out
    std::uint64_t id_live = 0;           ///< payload slots outstanding
    std::uint64_t msg_slots = 0;         ///< message-pool capacity (slots)
    std::uint64_t msg_live = 0;          ///< messages queued right now
    std::uint64_t delivery_capacity = 0; ///< delivered_ vector capacity
  };
  PoolStats pool_stats() const noexcept;
  /// The same gauges for one shard (s < shard_count()): the bench-shard
  /// context block records these so scaling curves carry their footprint.
  PoolStats shard_pool_stats(std::uint32_t s) const noexcept;

  /// True when `node` is currently alive (always true on fault-free runs).
  /// Protocols consult this to model crash-stop: a dead node takes no local
  /// steps (the transport already suppresses its traffic either way).
  bool node_up(NodeId node) const {
    return !faults_ || faults_->node_up(node);
  }

  /// Nodes currently alive (n on fault-free runs).
  std::uint64_t up_count() const {
    return faults_ ? faults_->up_count() : g_->node_count();
  }

  /// Reports a node that became a contender/candidate, for the
  /// "contenders" adversary strategy and the trace timeline. No-op on
  /// fault-free untraced runs.
  void note_contender(NodeId node);

  /// Records a protocol phase transition on the trace timeline (attributed
  /// to the upcoming round). No-op when tracing is off.
  void note_phase(const char* label, std::uint64_t value);

  /// The fault exposure of the run so far (empty on fault-free runs);
  /// protocols stash this in their results for the verdict layer.
  FaultOutcome fault_outcome() const {
    return faults_ ? faults_->outcome() : FaultOutcome{};
  }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  /// One queued message in a shard's pool. Scalars are copied from the
  /// sender's Message; the payload lives in the shard's id arena; `next`
  /// threads the lane's FIFO through the pool.
  struct QueuedMessage {
    std::uint64_t a = 0, b = 0, c = 0, d = 0;
    const std::uint64_t* ids = nullptr;
    std::uint32_t ids_len = 0;
    std::uint32_t bits = 0;
    std::uint32_t next = kNil;
    std::uint8_t tag = 0;
  };

  /// Per-directed-edge FIFO: head/tail indices into the owning shard's pool.
  struct Lane {
    std::uint32_t head = kNil;
    std::uint32_t tail = kNil;
    std::uint32_t count = 0;        ///< queued messages (backlog metric)
    std::uint32_t served_bits = 0;  ///< bits of the head already transmitted
    bool active = false;            ///< registered in the shard's active list
    /// Global activation order: assigned from stamp_counter_ inside the
    /// single-threaded send() each time the lane (re)activates. Within one
    /// shard the active list is stamp-ascending by construction; merging
    /// shards by stamp therefore reproduces the sequential service order.
    std::uint64_t stamp = 0;
  };

  /// A message fully served this round that survived the RNG-free fault
  /// checks: the shard workers emit these into fixed per-shard buffers, and
  /// the barrier merge disposes them in stamp order (drop draw, delivery).
  /// Scalars are copied because the pool slot is recycled during the service
  /// stage; the payload pointer stays valid (its arena slot is still live).
  struct Candidate {
    std::uint64_t stamp = 0;
    std::uint64_t a = 0, b = 0, c = 0, d = 0;
    const std::uint64_t* ids = nullptr;
    std::uint32_t ids_len = 0;
    std::uint32_t bits = 0;
    NodeId dst = 0;
    Port port = 0;          ///< receiver's local port
    std::uint32_t shard = 0;  ///< owning (sender) shard, for payload release
    std::uint8_t tag = 0;
  };

  /// Everything one worker owns: the active-lane list and pools of the lanes
  /// leaving its node range, the candidate (inbox) buffer it fills each
  /// round, and its per-round metric deltas (order-independent sums, merged
  /// at the barrier).
  struct Shard {
    std::vector<std::uint64_t> active;  ///< lane indices with traffic
    std::uint64_t active_count = 0;
    std::vector<QueuedMessage> msgs;    ///< shard message pool
    std::vector<std::uint32_t> free_msgs;
    IdArena ids;                        ///< payload storage
    /// Payloads of messages delivered last step: their views must survive
    /// until the next step() call, so they are released at its start.
    std::vector<std::pair<const std::uint64_t*, std::uint32_t>> retired_ids;
    std::vector<Candidate> candidates;
    std::uint64_t d_quanta = 0;  ///< congest_messages delta this round
    std::uint64_t d_crash = 0;
    std::uint64_t d_link = 0;
    std::array<std::uint64_t, 256> d_by_tag{};
  };

  std::uint64_t lane_index(NodeId from, Port port) const noexcept {
    return first_lane_[from] + port;
  }

  std::uint32_t alloc_msg(Shard& shard);
  void free_msg(Shard& shard, std::uint32_t slot);

  /// Phase A of step(): serves one quantum per active lane of shard `s`,
  /// runs the RNG-free fault checks, and emits surviving completions into
  /// the shard's candidate buffer. Touches only shard-local state plus
  /// read-only graph/fault tables — safe to run one worker per shard.
  void serve_shard(std::uint32_t s);

  const Graph* g_;
  CongestConfig cfg_;
  ShardPlan plan_;
  std::unique_ptr<ShardExecutor> executor_;  ///< null when shard_count() == 1
  std::vector<std::uint64_t> first_lane_;  ///< per-node base into lanes_
  std::vector<NodeId> lane_src_;           ///< lane -> sending node
  std::vector<Lane> lanes_;                ///< one per directed edge
  std::vector<Shard> shards_;
  std::uint64_t stamp_counter_ = 0;  ///< global lane-activation counter
  /// Barrier merge scratch: all shards' candidates, sorted by stamp.
  std::vector<Candidate> merged_;
  std::vector<Delivery> delivered_;
  Rng drop_rng_;  ///< consulted only when cfg_.drop_probability > 0
  std::unique_ptr<FaultInjector> faults_;  ///< null when cfg_.faults inactive
  Metrics metrics_;
};

}  // namespace wcle
