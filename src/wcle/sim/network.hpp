// Synchronous CONGEST transport. Each directed edge carries at most B bits
// per round; protocols `send()` messages through (node, port) pairs — never by
// neighbour identity, honoring the port-numbering model — and drive rounds by
// calling `step()`, which returns that round's deliveries. Congestion is
// modeled for real: each directed edge serves one B-bit quantum per round from
// a FIFO, so oversized or bursty traffic queues exactly as Lemma 12 assumes.
//
// Data plane (see README "Architecture"): queued messages live in one
// per-Network pool; each lane (directed edge) is an index-linked FIFO through
// that pool; variable-length payloads are copied into a chunked id arena with
// size-class free lists that rewinds whenever the network drains. Deliveries
// are views into those pools — the steady-state hot path performs no heap
// allocation, and the service order (hence every metric and the drop-RNG
// stream) is bit-identical to the pre-pool implementation.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "wcle/fault/injector.hpp"
#include "wcle/fault/plan.hpp"
#include "wcle/graph/graph.hpp"
#include "wcle/sim/message.hpp"
#include "wcle/sim/metrics.hpp"
#include "wcle/support/bits.hpp"
#include "wcle/support/rng.hpp"

namespace wcle {

class TraceRecorder;

/// CONGEST bandwidth configuration plus the seeded fault axis: each message,
/// after its bandwidth has been fully served, is lost with probability
/// `drop_probability` (drawn from an Rng seeded by `drop_seed`, so runs are
/// reproducible). The congestion bill is still paid for dropped messages —
/// lossy links consume bandwidth, they just fail to deliver.
struct CongestConfig {
  /// Bits per edge per direction per round (the model's B = Theta(log n)).
  std::uint32_t bandwidth_bits = 0;
  /// Per-message loss probability in [0, 1]; 0 = the reliable model.
  double drop_probability = 0.0;
  /// Seed of the drop stream; together with the deterministic lane-service
  /// order this makes faulty executions bit-reproducible.
  std::uint64_t drop_seed = 0;
  /// Structured faults: crash-stop schedules, link failures, churn windows
  /// (see fault/plan.hpp). An inactive plan costs nothing — the reliable
  /// model stays bit-identical to the pre-fault implementation.
  FaultPlan faults;
  /// Opt-in per-round event recorder (trace/recorder.hpp). Null = tracing
  /// off; the transport then pays one branch per round and nothing else.
  /// Recording never perturbs the execution.
  TraceRecorder* trace = nullptr;
  /// Sampled tracing: the recorder keeps every K-th round row (events are
  /// always kept). 1 (or 0) = record every round, the pre-sampling format.
  std::uint32_t trace_every = 1;
  /// Per-walk token tracing (schema v2): the recorder keeps walk_hop records
  /// for origins with id % K == 0 (1 = every walk). 0 = off, the default —
  /// the walk engine then never calls the recorder's hop hook.
  std::uint32_t trace_walks = 0;

  /// Standard CONGEST budget for an n-node network: enough for one id from
  /// [1, n^4] plus O(log n) control bits — a single "O(log n)-bit message".
  static CongestConfig standard(std::uint64_t n) {
    CongestConfig c;
    c.bandwidth_bits = id_bits(n) + 2 * ceil_log2(n) + 8;
    return c;
  }

  /// The relaxed O(log^3 n) regime of Lemma 12's second bound.
  static CongestConfig wide(std::uint64_t n) {
    const std::uint32_t lg = ceil_log2(n) > 0 ? ceil_log2(n) : 1;
    CongestConfig c;
    c.bandwidth_bits = (id_bits(n) + 2 * lg + 8) * lg * lg;
    return c;
  }

  /// Resolves bandwidth_bits == 0 (the "regime default" sentinel protocols
  /// accept in their optional config parameter) to standard(n), keeping the
  /// fault fields.
  CongestConfig resolved(std::uint64_t n) const {
    CongestConfig c = *this;
    if (c.bandwidth_bits == 0) c.bandwidth_bits = standard(n).bandwidth_bits;
    return c;
  }
};

/// Chunked bump/free-list arena for message id payloads. Addresses are
/// stable (chunks never move), so IdSpan views into the arena survive
/// arbitrary later allocations. Slots are handed out in power-of-two size
/// classes and recycled through per-class free lists; when every allocation
/// has been released (the network drained a round-batch), the whole arena
/// rewinds to its first chunk, so long runs reuse one footprint instead of
/// fragmenting. Counters are exposed for the no-allocation-per-delivery
/// tests (Network::pool_stats).
class IdArena {
 public:
  /// Returns a slot of capacity >= n words (n >= 1).
  std::uint64_t* alloc(std::uint32_t n);
  /// Releases a slot previously returned by alloc(n) with the same n.
  void release(const std::uint64_t* p, std::uint32_t n);
  /// Rewinds the bump cursor and drops the free lists when nothing is live.
  void maybe_reset();

  std::uint64_t chunk_count() const noexcept {
    return chunks_.size() + oversized_.size();
  }
  std::uint64_t live() const noexcept { return live_; }
  std::uint64_t alloc_calls() const noexcept { return alloc_calls_; }

 private:
  static constexpr std::uint32_t kChunkWords = 1u << 14;  ///< 128 KiB chunks
  static constexpr std::uint32_t kClasses = 32;

  static std::uint32_t size_class(std::uint32_t n) noexcept;

  /// Fixed-size bump chunks. Oversized slots (capacity > kChunkWords) live
  /// in oversized_ — never in bump space, so the cursor cannot wander into
  /// a live dedicated payload; they recycle through the free lists during a
  /// busy period and are returned to the heap on the drain rewind.
  std::vector<std::unique_ptr<std::uint64_t[]>> chunks_;
  std::vector<std::unique_ptr<std::uint64_t[]>> oversized_;
  std::size_t cur_chunk_ = 0;   ///< bump chunk index
  std::uint32_t cur_used_ = 0;  ///< words used in the bump chunk
  std::vector<std::uint64_t*> free_[kClasses];
  bool free_dirty_ = false;  ///< any free list non-empty (cheap reset guard)
  std::uint64_t live_ = 0;
  std::uint64_t alloc_calls_ = 0;
};

/// The transport. Owns the shared message pool, the per-directed-edge lane
/// rings, the payload arena, and all metrics.
class Network {
 public:
  Network(const Graph& g, CongestConfig cfg);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Enqueues `msg` for transmission from `from` through its local `port`:
  /// scalars and the viewed id words are copied into the network's pools, so
  /// the caller's payload storage only needs to outlive this call.
  /// Requires msg.bits >= 1 and port < degree(from).
  void send(NodeId from, Port port, const Message& msg);

  /// Advances one synchronous round: every backlogged directed edge serves one
  /// B-bit quantum; fully-served messages are delivered. Returns this round's
  /// deliveries as views (valid until the next call — Delivery::msg.ids
  /// points into the network's id arena).
  const std::vector<Delivery>& step();

  /// True when no message is queued or in flight.
  bool idle() const noexcept { return active_count_ == 0; }

  /// Runs step() until idle, dispatching deliveries to `handler`
  /// (callable as handler(const Delivery&)). Deliveries are passed by
  /// reference — no Message or payload copy per delivery. Returns rounds
  /// consumed. Stops (returning the rounds so far) if `max_rounds` elapse
  /// first.
  template <typename Handler>
  std::uint64_t run_until_idle(Handler&& handler,
                               std::uint64_t max_rounds = ~0ull) {
    std::uint64_t used = 0;
    while (!idle() && used < max_rounds) {
      const std::vector<Delivery>& delivered = step();
      ++used;
      for (const Delivery& d : delivered) handler(d);
    }
    return used;
  }

  std::uint64_t round() const noexcept { return metrics_.rounds; }
  const Metrics& metrics() const noexcept { return metrics_; }
  const Graph& graph() const noexcept { return *g_; }
  const CongestConfig& config() const noexcept { return cfg_; }

  /// Allocation instrumentation of the data-plane pools. Once a workload's
  /// footprint is warmed up, heap_blocks / msg_slots / delivery_capacity stay
  /// flat while deliveries keep flowing — the no-allocation-per-delivery
  /// property the tests pin down.
  struct PoolStats {
    std::uint64_t id_heap_blocks = 0;    ///< heap blocks the arena holds
    std::uint64_t id_alloc_calls = 0;    ///< payload slots handed out
    std::uint64_t id_live = 0;           ///< payload slots outstanding
    std::uint64_t msg_slots = 0;         ///< message-pool capacity (slots)
    std::uint64_t msg_live = 0;          ///< messages queued right now
    std::uint64_t delivery_capacity = 0; ///< delivered_ vector capacity
  };
  PoolStats pool_stats() const noexcept;

  /// True when `node` is currently alive (always true on fault-free runs).
  /// Protocols consult this to model crash-stop: a dead node takes no local
  /// steps (the transport already suppresses its traffic either way).
  bool node_up(NodeId node) const {
    return !faults_ || faults_->node_up(node);
  }

  /// Nodes currently alive (n on fault-free runs).
  std::uint64_t up_count() const {
    return faults_ ? faults_->up_count() : g_->node_count();
  }

  /// Reports a node that became a contender/candidate, for the
  /// "contenders" adversary strategy and the trace timeline. No-op on
  /// fault-free untraced runs.
  void note_contender(NodeId node);

  /// Records a protocol phase transition on the trace timeline (attributed
  /// to the upcoming round). No-op when tracing is off.
  void note_phase(const char* label, std::uint64_t value);

  /// The fault exposure of the run so far (empty on fault-free runs);
  /// protocols stash this in their results for the verdict layer.
  FaultOutcome fault_outcome() const {
    return faults_ ? faults_->outcome() : FaultOutcome{};
  }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  /// One queued message in the shared pool. Scalars are copied from the
  /// sender's Message; the payload lives in the id arena; `next` threads the
  /// lane's FIFO through the pool.
  struct QueuedMessage {
    std::uint64_t a = 0, b = 0, c = 0, d = 0;
    const std::uint64_t* ids = nullptr;
    std::uint32_t ids_len = 0;
    std::uint32_t bits = 0;
    std::uint32_t next = kNil;
    std::uint8_t tag = 0;
  };

  /// Per-directed-edge FIFO: head/tail indices into msgs_.
  struct Lane {
    std::uint32_t head = kNil;
    std::uint32_t tail = kNil;
    std::uint32_t count = 0;        ///< queued messages (backlog metric)
    std::uint32_t served_bits = 0;  ///< bits of the head already transmitted
    bool active = false;            ///< registered in active_ list
  };

  std::uint64_t lane_index(NodeId from, Port port) const noexcept {
    return first_lane_[from] + port;
  }

  std::uint32_t alloc_msg();
  void free_msg(std::uint32_t slot);

  const Graph* g_;
  CongestConfig cfg_;
  std::vector<std::uint64_t> first_lane_;  ///< per-node base into lanes_
  std::vector<NodeId> lane_src_;           ///< lane -> sending node
  std::vector<Lane> lanes_;                ///< one per directed edge
  std::vector<std::uint64_t> active_;      ///< lane indices with traffic
  std::uint64_t active_count_ = 0;
  std::vector<QueuedMessage> msgs_;        ///< shared message pool
  std::vector<std::uint32_t> free_msgs_;   ///< free slots in msgs_
  IdArena ids_;                            ///< payload storage
  /// Payloads of messages delivered last step: their views must survive
  /// until the next step() call, so they are released at its start.
  std::vector<std::pair<const std::uint64_t*, std::uint32_t>> retired_ids_;
  std::vector<Delivery> delivered_;
  Rng drop_rng_;  ///< consulted only when cfg_.drop_probability > 0
  std::unique_ptr<FaultInjector> faults_;  ///< null when cfg_.faults inactive
  Metrics metrics_;
};

}  // namespace wcle
