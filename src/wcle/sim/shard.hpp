// Sharding primitives for the round engine: a contiguous node partition
// (ShardPlan) and a persistent fork/join worker pool (ShardExecutor).
//
// The transport partitions nodes into contiguous ranges; every per-node
// resource (lanes, message pool, id arena) is owned by exactly one shard, so
// within a round each worker serves its own shard's lanes with no shared
// mutable state. Cross-shard effects (deliveries, the drop-RNG stream) are
// resolved at the round barrier in a canonical merge order — see
// Network::step() — which is what keeps seed-fixed runs bit-identical at any
// shard count.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wcle {

/// A contiguous partition of the node id space [0, n) into `shards` ranges
/// of near-equal size. Contiguity matters: concatenating per-shard node
/// ranges in shard order reproduces global node order, which is what lets
/// per-shard sorted structures merge back into the exact sequential order.
struct ShardPlan {
  std::uint32_t shards = 1;
  /// shards + 1 monotone boundaries; shard s owns [begin[s], begin[s + 1]).
  std::vector<std::uint64_t> begin;

  /// Builds a plan over n nodes, silently clamping `shards` to [1, max(n,1)].
  /// (The CLI layer owns the user-facing clamp warning; the transport stays
  /// quiet so library callers can pass a machine-derived count.)
  static ShardPlan make(std::uint64_t n, std::uint32_t shards);

  /// The shard owning `node` (binary search over the boundaries).
  std::uint32_t shard_of(std::uint64_t node) const noexcept;
};

/// A persistent fork/join pool: `lanes` logical workers, of which lanes - 1
/// are real threads and lane 0 is the calling thread. run(fn) executes
/// fn(0..lanes-1) concurrently and returns after all lanes finish; the first
/// exception thrown by any lane is rethrown on the caller after the join.
/// Spawned once per Network (not per round) so the per-round cost is one
/// condition-variable broadcast, not thread creation.
class ShardExecutor {
 public:
  explicit ShardExecutor(std::uint32_t lanes);
  ~ShardExecutor();

  ShardExecutor(const ShardExecutor&) = delete;
  ShardExecutor& operator=(const ShardExecutor&) = delete;

  std::uint32_t lanes() const noexcept {
    return static_cast<std::uint32_t>(threads_.size()) + 1;
  }

  /// Runs fn(lane) on every lane; lane 0 executes on the calling thread.
  /// Not reentrant: one run() at a time.
  void run(const std::function<void(std::uint32_t)>& fn);

 private:
  void worker(std::uint32_t lane);

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::uint32_t)>* fn_ = nullptr;
  std::uint64_t generation_ = 0;  ///< bumped per run(); workers wait on it
  std::uint32_t pending_ = 0;     ///< worker lanes still inside fn this run
  bool stop_ = false;
  std::exception_ptr error_;  ///< first exception of the current run
};

}  // namespace wcle
