#include "wcle/sim/shard.hpp"

#include <algorithm>
#include <cassert>

namespace wcle {

ShardPlan ShardPlan::make(std::uint64_t n, std::uint32_t shards) {
  ShardPlan plan;
  const std::uint64_t limit = n == 0 ? 1 : n;
  plan.shards = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(std::max<std::uint32_t>(shards, 1), limit));
  plan.begin.resize(plan.shards + 1);
  for (std::uint32_t s = 0; s <= plan.shards; ++s)
    plan.begin[s] = n * s / plan.shards;
  return plan;
}

std::uint32_t ShardPlan::shard_of(std::uint64_t node) const noexcept {
  assert(!begin.empty() && node < begin.back());
  // upper_bound over the monotone boundaries: the shard whose range holds
  // `node` is the predecessor of the first boundary strictly above it.
  const auto it = std::upper_bound(begin.begin(), begin.end(), node);
  return static_cast<std::uint32_t>(it - begin.begin()) - 1;
}

ShardExecutor::ShardExecutor(std::uint32_t lanes) {
  assert(lanes >= 1);
  threads_.reserve(lanes - 1);
  for (std::uint32_t lane = 1; lane < lanes; ++lane)
    threads_.emplace_back([this, lane] { worker(lane); });
}

ShardExecutor::~ShardExecutor() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ShardExecutor::run(const std::function<void(std::uint32_t)>& fn) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    pending_ = static_cast<std::uint32_t>(threads_.size());
    error_ = nullptr;
    ++generation_;
  }
  start_cv_.notify_all();
  // Lane 0 is the caller: run it inline while the workers run theirs. A
  // caller-lane exception still waits for the join (workers may hold
  // references into shared state) before propagating.
  std::exception_ptr caller_error;
  try {
    fn(0);
  } catch (...) {
    caller_error = std::current_exception();
  }
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
  std::exception_ptr error = error_ ? error_ : caller_error;
  error_ = nullptr;
  lock.unlock();
  if (error) std::rethrow_exception(error);
}

void ShardExecutor::worker(std::uint32_t lane) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::uint32_t)>* fn = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock,
                     [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      fn = fn_;
    }
    std::exception_ptr error;
    try {
      (*fn)(lane);
    } catch (...) {
      error = std::current_exception();
    }
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (error && !error_) error_ = error;
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace wcle
