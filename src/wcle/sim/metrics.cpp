#include "wcle/sim/metrics.hpp"

#include <algorithm>
#include <sstream>

namespace wcle {

Metrics Metrics::since(const Metrics& earlier) const {
  Metrics d;
  d.rounds = rounds - earlier.rounds;
  d.congest_messages = congest_messages - earlier.congest_messages;
  d.logical_messages = logical_messages - earlier.logical_messages;
  d.total_bits = total_bits - earlier.total_bits;
  d.max_edge_backlog = max_edge_backlog;
  d.dropped_messages = dropped_messages - earlier.dropped_messages;
  d.crash_dropped_messages =
      crash_dropped_messages - earlier.crash_dropped_messages;
  d.link_dropped_messages =
      link_dropped_messages - earlier.link_dropped_messages;
  d.pool_msg_slots = pool_msg_slots;
  d.pool_msg_live_high = pool_msg_live_high;
  d.pool_id_blocks = pool_id_blocks;
  d.pool_id_live_high = pool_id_live_high;
  for (std::size_t i = 0; i < congest_messages_by_tag.size(); ++i)
    d.congest_messages_by_tag[i] =
        congest_messages_by_tag[i] - earlier.congest_messages_by_tag[i];
  return d;
}

Metrics& Metrics::operator+=(const Metrics& other) {
  rounds += other.rounds;
  congest_messages += other.congest_messages;
  logical_messages += other.logical_messages;
  total_bits += other.total_bits;
  max_edge_backlog = std::max(max_edge_backlog, other.max_edge_backlog);
  dropped_messages += other.dropped_messages;
  crash_dropped_messages += other.crash_dropped_messages;
  link_dropped_messages += other.link_dropped_messages;
  pool_msg_slots = std::max(pool_msg_slots, other.pool_msg_slots);
  pool_msg_live_high = std::max(pool_msg_live_high, other.pool_msg_live_high);
  pool_id_blocks = std::max(pool_id_blocks, other.pool_id_blocks);
  pool_id_live_high = std::max(pool_id_live_high, other.pool_id_live_high);
  for (std::size_t i = 0; i < congest_messages_by_tag.size(); ++i)
    congest_messages_by_tag[i] += other.congest_messages_by_tag[i];
  return *this;
}

std::string Metrics::summary() const {
  std::ostringstream os;
  os << "rounds=" << rounds << " congest_msgs=" << congest_messages
     << " logical_msgs=" << logical_messages << " bits=" << total_bits;
  if (dropped_messages) os << " dropped=" << dropped_messages;
  if (crash_dropped_messages)
    os << " crash_dropped=" << crash_dropped_messages;
  if (link_dropped_messages) os << " link_dropped=" << link_dropped_messages;
  return os.str();
}

}  // namespace wcle
