// wcle_lint fixture: unordered-iter (D2).
//
// Iteration over unordered containers is flagged; membership tests, lookups,
// and sorted-copy patterns are not. `// SEED: unordered-iter` marks every
// line that must fire. Lint input only — never compiled.
#include <unordered_map>
#include <unordered_set>

namespace fixture {

void iteration_fires() {
  std::unordered_map<int, int> table;
  std::unordered_set<long> members;
  std::unordered_map<int, std::unordered_map<int, int>> nested;

  for (const auto& [k, v] : table) use(k, v);  // SEED: unordered-iter
  for (long m : members) use(m);               // SEED: unordered-iter
  for (auto it = table.begin(); it != end; ++it) use(*it);  // SEED: unordered-iter
  for (const auto& [k, inner] : nested) use(k);  // SEED: unordered-iter
}

void access_only_is_clean() {
  std::unordered_map<int, int> lookup;
  std::unordered_set<long> seen;
  lookup[3] = 4;
  if (seen.count(9)) use(lookup.at(3));
  const auto it = lookup.find(5);
  if (it != lookup.end()) use(it->second);
  // Iterating an ordinary vector with an unordered-ish name is fine.
  std::vector<int> unordered_results;
  for (int r : unordered_results) use(r);
}

void justified() {
  std::unordered_map<int, int> histogram;
  // wcle-lint: unordered-iter-ok(keys are copied out and sorted before any output)
  for (const auto& [k, v] : histogram) collect(k, v);
}

}  // namespace fixture
