// wcle_lint fixture: cross-shard merge that violates canonical order.
//
// The sharded round engine's barrier merge must consume per-shard candidate
// buffers in a canonical order (shard index ascending, then stamp) or the
// drop-RNG draw sequence — and with it the whole execution — diverges
// between shard counts. This fixture sketches the two ways to get it wrong:
// keying the buffers by shard in an unordered_map and walking it (hash
// order reaches the RNG), and ordering candidates by payload address
// (allocation order reaches the RNG). `// SEED:` marks every line that must
// fire. Lint input only — never compiled.
#include <algorithm>
#include <map>
#include <unordered_map>
#include <vector>

namespace fixture {

struct Candidate {
  unsigned long long stamp;
  const unsigned long long* payload;
};

void broken_merge(std::unordered_map<unsigned, std::vector<Candidate>>& per_shard) {
  // Hash order decides which shard's candidates meet the drop RNG first:
  // bit-identity across shard counts is gone.
  for (auto& [shard, candidates] : per_shard)  // SEED: unordered-iter
    dispose(candidates);
}

void broken_tiebreak(std::vector<Candidate>& merged) {
  // Payload addresses depend on pool warm-up history, not on the execution;
  // sorting by them makes the merge order run-dependent.
  std::map<const unsigned long long*, Candidate> by_payload;  // SEED: pointer-order
  for (Candidate& c : merged) by_payload.emplace(c.payload, c);
}

void canonical_merge(std::vector<std::vector<Candidate>>& shard_buckets,
                     std::vector<Candidate>& merged) {
  // The correct shape: shard buffers indexed by shard id, concatenated
  // ascending, then stamp-sorted — the activation order the sequential
  // engine would have used.
  for (auto& bucket : shard_buckets)
    merged.insert(merged.end(), bucket.begin(), bucket.end());
  std::sort(merged.begin(), merged.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.stamp < b.stamp;
            });
  dispose(merged);
}

}  // namespace fixture
