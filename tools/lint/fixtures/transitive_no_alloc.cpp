// wcle_lint fixture: no-alloc-transitive (A2) — calls inside a no-alloc
// region that reach an allocation through the call graph. The deepest
// chain here is three hops (hot -> bump -> record -> Sink::store), so the
// diagnostic must spell out the full path plus the leaf allocation site.
// Lint input only — never compiled.
#include <vector>

namespace fixture {

struct Sink {
  std::vector<int> rows;
  void store(int v);
};

// Leaf evidence: unguarded container growth (outside any region, so the
// lexical no-alloc rule stays silent — only summaries see it).
void Sink::store(int v) { rows.push_back(v); }

void record(Sink& sink, int v) { sink.store(v); }

void bump(Sink& sink) { record(sink, 1); }

void leaf_safe(int& x) { x += 1; }

// wcle-lint: begin-no-alloc
void hot(Sink& sink, int& x) {
  leaf_safe(x);
  bump(sink);                                // SEED: no-alloc-transitive
  record(sink, 2);                           // SEED: no-alloc-transitive
  sink.store(3);                            // SEED: no-alloc-transitive
}
// wcle-lint: end-no-alloc

// The same calls outside the region are fine: may-allocate is a fact, not
// a finding, until a region boundary is crossed.
void cold(Sink& sink) { bump(sink); }

}  // namespace fixture
