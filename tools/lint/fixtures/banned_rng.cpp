// wcle_lint fixture: banned-rng (D1).
//
// Every line marked `// SEED: banned-rng` must produce exactly that
// diagnostic; suppressed and commented/quoted occurrences must not. The
// fixture is lint input only — it is never compiled.
#include <chrono>
#include <random>

namespace fixture {

void nondeterminism_sources() {
  std::random_device rd;                       // SEED: banned-rng
  std::mt19937 gen(42);                        // SEED: banned-rng
  std::uniform_int_distribution<int> d(0, 9);  // SEED: banned-rng
  std::normal_distribution<double> nd;         // SEED: banned-rng
  int x = rand();                              // SEED: banned-rng
  srand(7);                                    // SEED: banned-rng
  long t = time(nullptr);                      // SEED: banned-rng
  auto s = std::chrono::steady_clock::now();   // SEED: banned-rng
  auto w = std::chrono::system_clock::now();   // SEED: banned-rng
  std::this_thread::yield();                   // SEED: banned-rng
  std::shuffle(v.begin(), v.end(), gen);       // SEED: banned-rng
  std::srand(9);                               // SEED: banned-rng
  (void)rd, (void)d, (void)nd, (void)x, (void)t, (void)s, (void)w;
}

void clean_lookalikes() {
  // A comment naming rand(), time(), std::shuffle and steady_clock::now()
  // must not fire — comments never reach the token stream.
  const char* msg = "call rand() or std::random_device at your peril";
  double stationary_distribution = 0.25;  // unqualified: not std::*
  int friendly_random = 0;                // substring of a banned name: fine
  auto member = obj.rand();               // member call, not the C rand()
  (void)msg, (void)stationary_distribution, (void)friendly_random;
  (void)member;
}

void justified() {
  // wcle-lint: banned-rng-ok(bench-only wall clock; never feeds simulation state)
  auto t0 = std::chrono::steady_clock::now();
  (void)t0;
}

}  // namespace fixture
