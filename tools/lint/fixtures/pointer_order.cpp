// wcle_lint fixture: pointer-order (D3).
//
// Pointer keys in ordered containers and pointer hashing/comparators are
// run-dependent (address order changes with ASLR and allocation history).
// `// SEED: pointer-order` marks every line that must fire. Lint input only.
#include <map>
#include <set>

namespace fixture {

struct Node;

void pointer_keys_fire() {
  std::map<Node*, int> by_address;             // SEED: pointer-order
  std::set<const Node*> visited;               // SEED: pointer-order
  std::multimap<Node*, Node*> edges;           // SEED: pointer-order
  std::set<std::pair<int, Node*>> pair_keyed;  // SEED: pointer-order
  std::hash<Node*> hasher;                     // SEED: pointer-order
  std::less<const Node*> cmp;                  // SEED: pointer-order
  (void)by_address, (void)visited, (void)edges, (void)pair_keyed;
  (void)hasher, (void)cmp;
}

void value_keys_are_clean() {
  std::map<int, Node*> by_id;          // pointer VALUES are fine; keys order
  std::set<long> ids;
  std::map<std::string, int> by_name;
  std::hash<std::string> name_hash;
  (void)by_id, (void)ids, (void)by_name, (void)name_hash;
}

void justified() {
  // wcle-lint: pointer-order-ok(scratch set inside one call; order never observed)
  std::set<Node*> scratch;
  (void)scratch;
}

}  // namespace fixture
