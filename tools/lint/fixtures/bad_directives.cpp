// wcle_lint fixture: directive rule — malformed annotations are findings.
//
// A standalone `// SEED: directive` marker expects the diagnostic on the
// NEXT line (the directive comment itself). Lint input only — never
// compiled.

namespace fixture {

// SEED: directive
// wcle-lint: frobnicate-the-linter
void unknown_directive() {}

// SEED: directive
// wcle-lint: banned-rng-ok()
void empty_reason() {}

// SEED: directive
// wcle-lint: no-such-rule-ok(reasonable)
void unknown_rule() {}

// SEED: directive
// wcle-lint: end-no-alloc
void unbalanced_end() {}

// SEED: directive
// wcle-lint: begin-no-alloc
void region_opened_but_never_closed() {}

// SEED: directive
// wcle-lint: begin-no-alloc
void nested_begin() {}

}  // namespace fixture
