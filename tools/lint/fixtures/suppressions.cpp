// wcle_lint fixture: suppression syntax round-trip.
//
// Every violation in this file is suppressed with a justification, so the
// linter must report zero diagnostics and exactly six suppressed entries
// whose reasons survive into the JSON report verbatim. Lint input only.
#include <random>
#include <unordered_map>

namespace fixture {

void trailing_form() {
  auto t = time(nullptr);  // wcle-lint: banned-rng-ok(trailing-comment form)
  (void)t;
}

void standalone_form() {
  // wcle-lint: banned-rng-ok(standalone comment binds to the next line)
  auto t = time(nullptr);
  (void)t;
}

void one_reason_per_rule() {
  std::unordered_map<int, int> table;
  // wcle-lint: unordered-iter-ok(order folded through a commutative sum)
  for (const auto& [k, v] : table) total += v;
}

// wcle-lint: begin-no-alloc
void suppressed_region(std::vector<int>& out) {
  // wcle-lint: no-alloc-ok(grows once at start-up, capacity is never released)
  out.push_back(1);
  out.push_back(2);  // wcle-lint: no-alloc-ok(second growth point, trailing form)
}
// wcle-lint: end-no-alloc

void engine_with_reason() {
  // A suppression comment may be preceded by ordinary prose comments; only
  // a comment that leads with the tool's marker is a directive.
  // wcle-lint: banned-rng-ok(fixture: engine reason must round-trip via JSON)
  std::mt19937 gen(42);
  (void)gen;
}

}  // namespace fixture
