// wcle_lint fixture: layering (L1) — the test lints this file under the
// display path src/wcle/trace/layering.cpp against the repo's own
// tools/lint/layers.txt, so the trace layer's declared dependencies
// {support, graph} apply. Includes that reach up into api or core must
// fire; same-layer, declared-dep, std, and non-wcle includes must not.
// Lint input only — never compiled.
#include <vector>

#include "wcle/support/json.hpp"
#include "wcle/graph/graph.hpp"
#include "wcle/trace/writer.hpp"
#include "wcle/api/sweep.hpp"                   // SEED: layering
#include "wcle/core/leader_election.hpp"        // SEED: layering
#include "third_party/not_wcle/header.hpp"

namespace fixture {

inline int noop() { return 0; }

}  // namespace fixture
