// wcle_lint fixture: rng-flow (R2) — by-value Rng copies, mid-run
// re-seeding, and draws guarded by unordered-container queries. Each
// finding sits beside its sanctioned counterpart (pass by reference,
// fork(key), construction-time seeding). Lint input only — never compiled.
#include <unordered_set>

#include "wcle/support/rng.hpp"

namespace fixture {

// (a) by-value parameters copy the stream; draws then correlate.
int draw_by_value(wcle::Rng rng) {           // SEED: rng-flow
  return static_cast<int>(rng.next());
}
int draw_by_ref(wcle::Rng& rng) { return static_cast<int>(rng.next()); }

// Whole-object copy-initialization duplicates the stream too; fork() is
// the sanctioned way to derive an independent child.
int copy_versus_fork(wcle::Rng& parent) {
  wcle::Rng dup = parent;                    // SEED: rng-flow
  wcle::Rng child = parent.fork(2);
  return static_cast<int>(dup.next() + child.next());
}

// (b) assigning a fresh Rng mid-run re-seeds; construction-time seeding
// (a declaration with initializer) stays sanctioned.
int reseed(wcle::Rng& rng) {
  wcle::Rng fresh = wcle::Rng(7);
  rng = wcle::Rng(99);                       // SEED: rng-flow
  return static_cast<int>(fresh.next());
}

// (c) hash-table state must not decide whether a draw happens: the draw
// sequence would become hash-order-dependent.
int guarded_draws(wcle::Rng& rng) {
  std::unordered_set<int> seen = {1, 2, 3};
  int total = 0;
  if (seen.count(2)) {
    total += static_cast<int>(rng.next());   // SEED: rng-flow
  }
  if (seen.count(3))
    total += static_cast<int>(rng.next_below(7));  // SEED: rng-flow
  if (seen.count(4)) total += 1;  // no draw inside: clean
  return total;
}

}  // namespace fixture
