// wcle_lint fixture: no-alloc (A1) and region directives.
//
// Allocation inside a begin-no-alloc .. end-no-alloc region is flagged;
// identical code outside a region is not. `// SEED: no-alloc` marks
// every line that must fire. Lint input only — never compiled.
#include <memory>
#include <vector>

namespace fixture {

struct Pool {
  std::vector<int> slots;
  int* raw = nullptr;
};

// wcle-lint: begin-no-alloc
void hot_path(Pool& pool, std::vector<int>& out) {
  int* p = new int[16];                      // SEED: no-alloc
  auto u = std::make_unique<int>(3);         // SEED: no-alloc
  auto s = std::make_shared<int>(4);         // SEED: no-alloc
  void* m = malloc(64);                      // SEED: no-alloc
  pool.slots.push_back(7);                   // SEED: no-alloc
  out.resize(128);                           // SEED: no-alloc
  out.reserve(256);                          // SEED: no-alloc
  out.emplace_back(1);                       // SEED: no-alloc
  std::map<int, int> scratch;                // SEED: no-alloc
  std::function<void()> cb;                  // SEED: no-alloc
  std::string label;                         // SEED: no-alloc
  (void)p, (void)u, (void)s, (void)m, (void)scratch, (void)cb, (void)label;
}

void warm_growth(Pool& pool) {
  // wcle-lint: no-alloc-ok(pool growth is cold-start only; steady state recycles)
  pool.slots.push_back(9);
}

// Growth that is control-dependent on a capacity query is machine-proved
// cold (the guarded-growth recognizer): no finding, no suppression needed.
void guarded_growth(Pool& pool) {
  if (pool.slots.size() == pool.slots.capacity()) {
    pool.slots.push_back(1);
  }
  if (pool.slots.empty()) pool.slots.reserve(64);
}
// wcle-lint: end-no-alloc

void outside_region_is_clean(Pool& pool, std::vector<int>& out) {
  int* p = new int[16];
  pool.slots.push_back(7);
  out.resize(128);
  auto u = std::make_unique<int>(3);
  (void)p, (void)u;
}

}  // namespace fixture
