// Whole-tree call graph and may-allocate fixpoint for wcle_lint's
// transitive no-alloc rule (A2).
//
// Name resolution is deliberately modest — there is no type information, so
// a call resolves to *every* indexed function it could plausibly name:
//   - "Qual::f(...)" resolves to definitions whose display is "Qual::f";
//     if none exist, it falls back to every definition named "f".
//   - "obj.f(...)" / "obj->f(...)" and plain "f(...)" resolve to every
//     definition named "f" (overloads and same-named methods merge).
//   - "std::f(...)" never resolves (the standard library is covered by the
//     lexical allocation vocabulary instead).
// A function *may allocate* when its body holds direct allocation evidence
// (excluding capacity-guarded cold-growth sites and sites silenced by an
// audited `no-alloc-ok` suppression — silencing is recorded so the
// suppression counts as used), or when any call in its body can resolve to
// a may-allocate function. The summary propagates with a fixpoint, and each
// diagnostic carries a concrete witness chain down to the allocation site.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "lint/index.hpp"

namespace wcle_lint {

/// Identifies one function across the merged index set.
struct FunctionRef {
  std::size_t file = 0;  ///< index into the FileIndex vector
  std::size_t fn = 0;    ///< index into FileIndex::functions
};

class CallGraph {
 public:
  /// `evidence_silenced(file_idx, site)` returns true when a hand-written
  /// suppression covers this allocation site; such sites do not feed the
  /// summary (and the callback is how the suppression is marked used).
  CallGraph(const std::vector<FileIndex>& files,
            const std::function<bool(std::size_t, const AllocSite&)>&
                evidence_silenced);

  /// Emits one "no-alloc-transitive" diagnostic per call site that lies
  /// inside a no-alloc region and can reach an allocation, with the full
  /// witness chain in the message.
  void report_region_escapes(std::vector<Diagnostic>& out) const;

  /// True when the named function's summary is may-allocate (test hook).
  bool may_alloc(const std::string& display) const;

 private:
  /// Breadth-first witness: `start` is a may-allocate function; returns the
  /// display chain from it down to a function with direct evidence, plus
  /// that evidence site. Empty chain when no witness exists (cannot happen
  /// for a fixpoint-positive function, but the caller stays defensive).
  void witness(const FunctionRef& start, std::vector<std::string>& chain,
               std::string& site_text) const;

  const std::vector<FileIndex>& files_;
  std::function<std::vector<FunctionRef>(const CallSite&)> resolve_;
  std::vector<std::vector<bool>> may_alloc_;      // [file][fn]
  std::vector<std::vector<int>> direct_site_;     // [file][fn] -> alloc_sites
                                                  // index or -1
};

}  // namespace wcle_lint
