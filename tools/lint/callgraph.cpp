#include "lint/callgraph.hpp"

#include <deque>
#include <unordered_map>
#include <unordered_set>

namespace wcle_lint {

namespace {

/// Member calls that must never resolve by bare name. Growth members
/// (push_back, insert, ...) are direct lexical evidence already, and the
/// std container / smart-pointer surface (begin, end, get, ...) is called
/// overwhelmingly on standard types — resolving `v.begin()` to some
/// project class's own begin() would fabricate chains.
bool unresolvable_member(const CallSite& c) {
  static const std::unordered_set<std::string> kStdSurface = {
      "begin",  "end",     "cbegin",   "cend",     "rbegin",   "rend",
      "crbegin", "crend",  "size",     "empty",    "capacity", "clear",
      "front",  "back",    "data",     "at",       "find",     "count",
      "contains", "erase", "swap",     "reset",    "get",      "release",
      "push",   "pop",     "top",      "first",    "second",   "length",
      "substr", "c_str",   "lower_bound", "upper_bound", "pop_back",
      "pop_front"};
  if (!c.member) return false;
  return growth_calls().count(c.callee) > 0 || kStdSurface.count(c.callee) > 0;
}

}  // namespace

CallGraph::CallGraph(
    const std::vector<FileIndex>& files,
    const std::function<bool(std::size_t, const AllocSite&)>&
        evidence_silenced)
    : files_(files) {
  // Name tables. Keys: "Qual::name" and bare "name".
  std::unordered_map<std::string, std::vector<FunctionRef>> by_display;
  std::unordered_map<std::string, std::vector<FunctionRef>> by_name;
  may_alloc_.resize(files_.size());
  direct_site_.resize(files_.size());
  for (std::size_t f = 0; f < files_.size(); ++f) {
    const auto& fns = files_[f].functions;
    may_alloc_[f].assign(fns.size(), false);
    direct_site_[f].assign(fns.size(), -1);
    for (std::size_t k = 0; k < fns.size(); ++k) {
      by_name[fns[k].name].push_back({f, k});
      if (!fns[k].qualifier.empty())
        by_display[fns[k].display].push_back({f, k});
      for (std::size_t s = 0; s < fns[k].alloc_sites.size(); ++s) {
        const AllocSite& site = fns[k].alloc_sites[s];
        if (site.guarded) continue;  // machine-checked cold growth
        if (evidence_silenced && evidence_silenced(f, site)) continue;
        if (direct_site_[f][k] < 0) direct_site_[f][k] = static_cast<int>(s);
        may_alloc_[f][k] = true;
      }
    }
  }

  resolve_ = [this, by_display = std::move(by_display),
              by_name = std::move(by_name)](const CallSite& call) {
    std::vector<FunctionRef> out;
    if (call.qualifier == "std") return out;
    if (unresolvable_member(call)) return out;
    if (!call.qualifier.empty()) {
      auto it = by_display.find(call.qualifier + "::" + call.callee);
      if (it != by_display.end()) return it->second;
    }
    auto it = by_name.find(call.callee);
    if (it != by_name.end()) out = it->second;
    return out;
  };

  // May-allocate fixpoint over the resolved call edges.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t f = 0; f < files_.size(); ++f) {
      for (std::size_t k = 0; k < files_[f].functions.size(); ++k) {
        if (may_alloc_[f][k]) continue;
        for (const CallSite& call : files_[f].functions[k].calls) {
          bool hit = false;
          for (const FunctionRef& cand : resolve_(call)) {
            if (may_alloc_[cand.file][cand.fn]) {
              hit = true;
              break;
            }
          }
          if (hit) {
            may_alloc_[f][k] = true;
            changed = true;
            break;
          }
        }
      }
    }
  }
}

bool CallGraph::may_alloc(const std::string& display) const {
  for (std::size_t f = 0; f < files_.size(); ++f)
    for (std::size_t k = 0; k < files_[f].functions.size(); ++k)
      if (files_[f].functions[k].display == display && may_alloc_[f][k])
        return true;
  return false;
}

void CallGraph::witness(const FunctionRef& start,
                        std::vector<std::string>& chain,
                        std::string& site_text) const {
  // BFS over may-allocate functions, remembering the predecessor edge, until
  // a function with direct evidence is reached. Deterministic: candidates
  // are visited in index order.
  struct Node {
    FunctionRef ref;
    int parent;  // index into `visited`
  };
  std::vector<Node> visited;
  std::unordered_set<std::uint64_t> seen;
  auto key = [](const FunctionRef& r) {
    return (static_cast<std::uint64_t>(r.file) << 32) |
           static_cast<std::uint64_t>(r.fn);
  };
  std::deque<int> queue;
  visited.push_back({start, -1});
  seen.insert(key(start));
  queue.push_back(0);

  int found = -1;
  while (!queue.empty() && found < 0) {
    const int cur = queue.front();
    queue.pop_front();
    const FunctionRef ref = visited[static_cast<std::size_t>(cur)].ref;
    if (direct_site_[ref.file][ref.fn] >= 0) {
      found = cur;
      break;
    }
    for (const CallSite& call : files_[ref.file].functions[ref.fn].calls) {
      for (const FunctionRef& cand : resolve_(call)) {
        if (!may_alloc_[cand.file][cand.fn]) continue;
        if (!seen.insert(key(cand)).second) continue;
        visited.push_back({cand, cur});
        queue.push_back(static_cast<int>(visited.size()) - 1);
      }
    }
  }

  chain.clear();
  site_text.clear();
  if (found < 0) return;
  for (int at = found; at >= 0;
       at = visited[static_cast<std::size_t>(at)].parent)
    chain.push_back(
        files_[visited[static_cast<std::size_t>(at)].ref.file]
            .functions[visited[static_cast<std::size_t>(at)].ref.fn]
            .display);
  // Built leaf-to-start; flip to start-to-leaf.
  for (std::size_t a = 0, b = chain.size(); a + 1 < b; ++a, --b)
    std::swap(chain[a], chain[b - 1]);
  const FunctionRef leaf = visited[static_cast<std::size_t>(found)].ref;
  const AllocSite& site =
      files_[leaf.file]
          .functions[leaf.fn]
          .alloc_sites[static_cast<std::size_t>(
              direct_site_[leaf.file][leaf.fn])];
  site_text = site.what + " at " + files_[leaf.file].path + ":" +
              std::to_string(site.line);
}

void CallGraph::report_region_escapes(std::vector<Diagnostic>& out) const {
  for (std::size_t f = 0; f < files_.size(); ++f) {
    for (std::size_t k = 0; k < files_[f].functions.size(); ++k) {
      const FunctionInfo& fn = files_[f].functions[k];
      for (const CallSite& call : fn.calls) {
        if (!call.in_no_alloc_region) continue;
        FunctionRef hit{0, 0};
        bool any = false;
        for (const FunctionRef& cand : resolve_(call)) {
          if (may_alloc_[cand.file][cand.fn]) {
            hit = cand;
            any = true;
            break;
          }
        }
        if (!any) continue;
        std::vector<std::string> chain;
        std::string site_text;
        witness(hit, chain, site_text);
        std::string msg = "call to '" +
                          files_[hit.file].functions[hit.fn].display +
                          "' inside a no-alloc region can reach an "
                          "allocation: " +
                          fn.display;
        for (const std::string& step : chain) msg += " -> " + step;
        if (!site_text.empty()) msg += " (" + site_text + ")";
        out.push_back(
            {files_[f].path, call.line, call.col, "no-alloc-transitive", msg});
      }
    }
  }
}

}  // namespace wcle_lint
