#!/bin/sh
# wcle_lint pre-commit hook (and its installer).
#
#   tools/lint/pre-commit.sh install   copy this script to .git/hooks/pre-commit
#   tools/lint/pre-commit.sh          run the lint gate (what the hook does)
#
# The gate lints only the files changed vs. HEAD (wcle_lint --changed), with
# the incremental cache, so a clean commit costs milliseconds. A missing
# build is a soft skip — the hook must never block a commit on an unbuilt
# tree — but findings are a hard stop.
set -u

repo_root=$(git rev-parse --show-toplevel 2>/dev/null) || {
  echo "pre-commit: not inside a git checkout" >&2
  exit 1
}

if [ "${1:-}" = "install" ]; then
  hooks_dir="$repo_root/.git/hooks"
  mkdir -p "$hooks_dir"
  cp "$repo_root/tools/lint/pre-commit.sh" "$hooks_dir/pre-commit"
  chmod +x "$hooks_dir/pre-commit"
  echo "pre-commit: installed wcle_lint gate into .git/hooks/pre-commit"
  exit 0
fi

cd "$repo_root" || exit 1

lint_bin="$repo_root/build/wcle_lint"
if [ ! -x "$lint_bin" ]; then
  echo "pre-commit: build/wcle_lint not built — skipping lint gate" >&2
  echo "pre-commit: (cmake -B build -S . && cmake --build build -j)" >&2
  exit 0
fi

# Scope to src/: that is the enforced surface (fixtures and docs contain
# directive-looking text on purpose).
"$lint_bin" --changed=HEAD --root=src --cache --jobs=0
status=$?
if [ "$status" -eq 1 ]; then
  echo "pre-commit: wcle_lint found problems in the files this commit" >&2
  echo "pre-commit: touches — fix them or add an audited suppression" >&2
  echo "pre-commit: (// wcle-lint: <rule>-ok(reason)); see" >&2
  echo "pre-commit: tools/lint/README.md" >&2
fi
exit "$status"
