// wcle_lint driver: directive parsing, the per-file lexical pass, the
// whole-tree interprocedural passes (transitive no-alloc, layering), the
// incremental cache, suppression filtering, and report formatting.
//
// Directive syntax (inside a // comment; block comments never carry
// directives, and string literals never reach the parser):
//   // wcle-lint: <rule>-ok(reason)   suppress <rule> on this line (trailing
//                                     comment) or on the next line
//                                     (standalone comment); the reason is
//                                     mandatory and is carried into the
//                                     report so reviews can audit it.
//   // wcle-lint: begin-no-alloc      open a zero-allocation region
//   // wcle-lint: end-no-alloc        close it
//
// A suppression that names an unknown rule, a reason-less suppression, or an
// unbalanced region marker is itself a "directive" diagnostic — and so is a
// *stale* suppression (one whose rule produces no finding on the line it
// covers): annotations are part of the checked surface, not free-form
// comments.
//
// Pipeline: each file is lexed, directive-parsed, rule-checked, and indexed
// independently (in parallel when options.jobs > 1); per-file results are
// cached keyed by content hash when options.cache_dir is set. The merge
// stage then runs the interprocedural rules over every file's index at
// once, applies the capacity-guard exemption to lexical no-alloc findings,
// matches suppressions, and reports stale ones. Output order is
// deterministic regardless of thread count or cache state.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "lint/rules.hpp"

namespace wcle_lint {

/// Tool version: stamped into reports and the cache key (bumping it
/// invalidates every cache entry, which is exactly right after a rule
/// change).
extern const char kLintVersion[];

/// A diagnostic that was silenced by an `-ok(reason)` annotation. Kept in
/// the report (and the JSON/SARIF output) so the justification is auditable.
struct SuppressedDiagnostic {
  std::string file;
  std::uint32_t line = 0;
  std::string rule;
  std::string reason;
};

struct LintOptions {
  /// Restrict to these rules; empty = all rules.
  std::vector<std::string> rules;
  /// Worker threads for the per-file pass; 0 = hardware concurrency.
  unsigned jobs = 0;
  /// Per-file result cache directory; empty disables caching.
  std::string cache_dir;
  /// Layering DAG config (tools/lint/layers.txt); empty disables the
  /// layering rule.
  std::string layers_file;
  /// The file set is a subset of the tree (--changed): the call graph is
  /// incomplete, so a no-alloc-transitive suppression whose chain runs
  /// through unseen files must not be reported stale.
  bool partial = false;
};

struct LintReport {
  std::vector<Diagnostic> diagnostics;
  std::vector<SuppressedDiagnostic> suppressed;
  /// Infrastructure failures (unreadable root, bad layers file): these are
  /// not code findings and map to exit code 2, never to a "clean" pass.
  std::vector<std::string> errors;
  std::uint64_t files_scanned = 0;
  std::uint64_t cache_hits = 0;

  bool clean() const { return diagnostics.empty() && errors.empty(); }
};

/// Lints in-memory buffers (the unit-test entry point): each pair is
/// (display path, source). The interprocedural passes see all buffers
/// together, so multi-TU call chains can be tested hermetically.
LintReport lint_sources(
    const std::vector<std::pair<std::string, std::string>>& sources,
    const LintOptions& options = {});

/// Single-buffer convenience wrapper over lint_sources.
LintReport lint_source(const std::string& display_path,
                       const std::string& source,
                       const LintOptions& options = {});

/// Lints files and/or directories (directories are walked recursively for
/// .cpp/.cc/.cxx/.hpp/.h files). A missing or unreadable path is an entry in
/// LintReport::errors, not a silent empty pass.
LintReport lint_paths(const std::vector<std::string>& paths,
                      const LintOptions& options = {});

/// Human-readable report: one `file:line:col: [rule] message` line per
/// diagnostic plus a summary trailer (errors, if any, come first).
std::string to_text(const LintReport& report);

/// Machine-readable report (stable schema; see tools/lint/README.md).
/// `roots` is echoed back for provenance.
std::string to_json(const LintReport& report,
                    const std::vector<std::string>& roots);

/// Writes `s` as a JSON string literal, with escaping. Shared with the
/// SARIF writer.
void json_escape(std::ostream& os, const std::string& s);

}  // namespace wcle_lint
