// wcle_lint driver: directive parsing, suppression filtering, file
// discovery, and report formatting.
//
// Directive syntax (inside any comment):
//   // wcle-lint: <rule>-ok(reason)   suppress <rule> on this line (trailing
//                                     comment) or on the next line
//                                     (standalone comment); the reason is
//                                     mandatory and is carried into the
//                                     report so reviews can audit it.
//   // wcle-lint: begin-no-alloc      open a zero-allocation region
//   // wcle-lint: end-no-alloc        close it
//
// A suppression that names an unknown rule, a reason-less suppression, or an
// unbalanced region marker is itself a "directive" diagnostic — annotations
// are part of the checked surface, not free-form comments.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lint/rules.hpp"

namespace wcle_lint {

/// A diagnostic that was silenced by an `-ok(reason)` annotation. Kept in
/// the report (and the JSON output) so the justification is auditable.
struct SuppressedDiagnostic {
  std::string file;
  std::uint32_t line = 0;
  std::string rule;
  std::string reason;
};

struct LintOptions {
  /// Restrict to these rules; empty = all rules.
  std::vector<std::string> rules;
};

struct LintReport {
  std::vector<Diagnostic> diagnostics;
  std::vector<SuppressedDiagnostic> suppressed;
  std::uint64_t files_scanned = 0;

  bool clean() const { return diagnostics.empty(); }
};

/// Lints a single in-memory buffer (the unit-test entry point).
LintReport lint_source(const std::string& display_path,
                       const std::string& source,
                       const LintOptions& options = {});

/// Lints files and/or directories (directories are walked recursively for
/// .cpp/.cc/.hpp/.h files). Unreadable paths produce a "directive"-rule
/// diagnostic rather than silent omission.
LintReport lint_paths(const std::vector<std::string>& paths,
                      const LintOptions& options = {});

/// Human-readable report: one `file:line:col: [rule] message` line per
/// diagnostic plus a summary trailer.
std::string to_text(const LintReport& report);

/// Machine-readable report (stable schema; see README "Correctness
/// tooling"). `roots` is echoed back for provenance.
std::string to_json(const LintReport& report,
                    const std::vector<std::string>& roots);

}  // namespace wcle_lint
