// SARIF 2.1.0 writer for wcle_lint, so CI findings surface as GitHub code
// scanning annotations. One run, one driver ("wcle_lint"), one rule entry
// per lint rule; active findings become `results` at level "error",
// suppressed findings are emitted with an inSource suppression carrying the
// audited justification (SARIF viewers hide them by default but the
// justification stays reviewable).
#pragma once

#include <string>
#include <vector>

#include "lint/linter.hpp"

namespace wcle_lint {

/// Serializes the report as a SARIF 2.1.0 log. `roots` are echoed into the
/// run's invocation arguments for provenance.
std::string to_sarif(const LintReport& report,
                     const std::vector<std::string>& roots);

}  // namespace wcle_lint
