#include "lint/rules.hpp"

#include <algorithm>
#include <unordered_set>

namespace wcle_lint {

namespace {

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t k = std::string(suffix).size();
  return s.size() >= k && s.compare(s.size() - k, k, suffix) == 0;
}

bool is_ident(const Token& t, const char* text) {
  return t.kind == TokKind::kIdent && t.text == text;
}

bool is_punct(const Token& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

/// std:: random engines (all banned: their streams are only as portable as
/// the distributions fed from them, and wcle::Rng is the sanctioned source).
const std::unordered_set<std::string>& banned_engines() {
  static const std::unordered_set<std::string> kSet = {
      "mt19937",       "mt19937_64",   "minstd_rand",
      "minstd_rand0",  "knuth_b",      "default_random_engine",
      "ranlux24",      "ranlux48",     "ranlux24_base",
      "ranlux48_base", "random_device"};
  return kSet;
}

/// Bare C functions whose results depend on wall clock / process state.
const std::unordered_set<std::string>& banned_c_calls() {
  static const std::unordered_set<std::string> kSet = {
      "rand", "srand", "rand_r", "random",        "srandom",
      "time", "clock", "getpid", "gettimeofday",  "timespec_get",
      "drand48", "lrand48", "mrand48"};
  return kSet;
}

const std::unordered_set<std::string>& unordered_container_names() {
  static const std::unordered_set<std::string> kSet = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  return kSet;
}

const std::unordered_set<std::string>& ordered_container_names() {
  static const std::unordered_set<std::string> kSet = {"map", "set", "multimap",
                                                       "multiset"};
  return kSet;
}

/// Member calls that can grow their receiver (allocate) — banned inside
/// no-alloc regions unless suppressed with a justification.
const std::unordered_set<std::string>& growth_calls() {
  static const std::unordered_set<std::string> kSet = {
      "resize",  "reserve", "push_back",     "emplace_back", "emplace",
      "insert",  "assign",  "shrink_to_fit", "append",       "to_vector"};
  return kSet;
}

/// Allocating free functions / factories.
const std::unordered_set<std::string>& alloc_calls() {
  static const std::unordered_set<std::string> kSet = {
      "make_unique", "make_shared", "malloc", "calloc", "realloc", "strdup"};
  return kSet;
}

/// std:: types whose construction allocates per element or per call —
/// mentioning one inside a no-alloc region is a finding by itself.
const std::unordered_set<std::string>& allocating_std_types() {
  static const std::unordered_set<std::string> kSet = {
      "map",           "multimap",           "set",
      "multiset",      "list",               "forward_list",
      "deque",         "unordered_map",      "unordered_set",
      "unordered_multimap", "unordered_multiset", "function",
      "string",        "ostringstream",      "stringstream"};
  return kSet;
}

/// Index of the '>' closing the '<' at `open` (depth-aware, tolerant of
/// parentheses inside template arguments). Returns npos when the '<' turns
/// out to be a comparison (a ';' or unbalanced close intervenes).
std::size_t match_angle(const std::vector<Token>& toks, std::size_t open) {
  int angle = 1;
  int paren = 0;
  for (std::size_t i = open + 1; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kPunct) continue;
    if (t.text == "(")
      ++paren;
    else if (t.text == ")") {
      if (--paren < 0) return std::string::npos;
    } else if (paren == 0 && t.text == "<")
      ++angle;
    else if (paren == 0 && t.text == ">") {
      if (--angle == 0) return i;
    } else if (t.text == ";" || t.text == "{") {
      return std::string::npos;
    }
  }
  return std::string::npos;
}

struct RuleSink {
  const std::string& path;
  std::vector<Diagnostic>& out;

  void emit(const Token& at, const char* rule, std::string message) {
    out.push_back({path, at.line, at.col, rule, std::move(message)});
  }
};

// ------------------------------------------------------------- banned-rng

void rule_banned_rng(const std::vector<Token>& toks, RuleSink& sink) {
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent) continue;
    const Token* next = i + 1 < toks.size() ? &toks[i + 1] : nullptr;
    const Token* prev = i > 0 ? &toks[i - 1] : nullptr;

    // std::X forms.
    if (t.text == "std" && next && is_punct(*next, "::") &&
        i + 2 < toks.size() && toks[i + 2].kind == TokKind::kIdent) {
      const Token& x = toks[i + 2];
      if (banned_engines().count(x.text)) {
        sink.emit(x, "banned-rng",
                  "std::" + x.text +
                      " is banned: all randomness must flow through "
                      "wcle::Rng (support/rng.hpp)");
        continue;
      }
      if (x.text == "this_thread") {
        sink.emit(x, "banned-rng",
                  "std::this_thread is banned in simulation code: "
                  "sleep/yield make timing part of the execution");
        continue;
      }
      if (x.text == "shuffle" || x.text == "random_shuffle") {
        sink.emit(x, "banned-rng",
                  "std::" + x.text +
                      " is banned: its draw order is implementation-defined; "
                      "use Rng::shuffle (support/rng.hpp)");
        continue;
      }
      if (ends_with(x.text, "_distribution")) {
        sink.emit(x, "banned-rng",
                  "std::" + x.text +
                      " is banned: standard distributions are not "
                      "bit-identical across implementations; use the "
                      "explicit distributions on wcle::Rng");
        continue;
      }
      if (banned_c_calls().count(x.text)) {
        sink.emit(x, "banned-rng",
                  "std::" + x.text +
                      " is banned: wall-clock/process state breaks seed-fixed "
                      "reproducibility");
        continue;
      }
    }

    // steady_clock::now / system_clock::now / any *_clock::now.
    if (ends_with(t.text, "_clock") && next && is_punct(*next, "::") &&
        i + 2 < toks.size() && is_ident(toks[i + 2], "now")) {
      sink.emit(t, "banned-rng",
                t.text +
                    "::now() is banned in simulation code: wall-clock reads "
                    "make executions time-dependent (timing belongs in "
                    "bench/CLI layers only)");
      continue;
    }

    // Bare C calls: rand(, time(, ... — not preceded by . -> or ::.
    if (banned_c_calls().count(t.text) && next && is_punct(*next, "(")) {
      if (prev && (is_punct(*prev, ".") || is_punct(*prev, "->") ||
                   is_punct(*prev, "::")))
        continue;  // member/qualified call of an unrelated name (std:: forms
                   // are handled above)
      sink.emit(t, "banned-rng",
                t.text +
                    "() is banned: wall-clock/process state breaks seed-fixed "
                    "reproducibility; use wcle::Rng for randomness");
    }
  }
}

// --------------------------------------------------------- unordered-iter

void rule_unordered_iter(const std::vector<Token>& toks, RuleSink& sink) {
  // Pass 1: names declared with an unordered container type in this file
  // (locals, members, parameters — anything of the form
  // `unordered_xxx<...> [&*const]* name` where name is not a function).
  std::unordered_set<std::string> tracked;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent || t.pp) continue;
    if (!unordered_container_names().count(t.text)) continue;
    if (i + 1 >= toks.size() || !is_punct(toks[i + 1], "<")) continue;
    const std::size_t close = match_angle(toks, i + 1);
    if (close == std::string::npos) continue;
    std::size_t k = close + 1;
    while (k < toks.size() &&
           (is_punct(toks[k], "&") || is_punct(toks[k], "*") ||
            is_ident(toks[k], "const")))
      ++k;
    if (k + 1 < toks.size() && toks[k].kind == TokKind::kIdent &&
        !is_punct(toks[k + 1], "("))  // a '(' would make it a function decl
      tracked.insert(toks[k].text);
  }
  if (tracked.empty()) return;

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    // Range-for whose range expression mentions a tracked name.
    if (is_ident(t, "for") && i + 1 < toks.size() &&
        is_punct(toks[i + 1], "(")) {
      int depth = 0;
      std::size_t colon = std::string::npos;
      std::size_t close = std::string::npos;
      for (std::size_t j = i + 1; j < toks.size(); ++j) {
        const Token& u = toks[j];
        if (u.kind != TokKind::kPunct) continue;
        if (u.text == "(" || u.text == "[" || u.text == "{")
          ++depth;
        else if (u.text == ")" || u.text == "]" || u.text == "}") {
          if (--depth == 0) {
            close = j;
            break;
          }
        } else if (depth == 1 && u.text == ";") {
          break;  // classic for loop, not range-for
        } else if (depth == 1 && u.text == ":" &&
                   colon == std::string::npos) {
          colon = j;
        }
      }
      if (colon == std::string::npos || close == std::string::npos) continue;
      for (std::size_t j = colon + 1; j < close; ++j) {
        if (toks[j].kind == TokKind::kIdent && tracked.count(toks[j].text)) {
          sink.emit(t, "unordered-iter",
                    "range-for over unordered container '" + toks[j].text +
                        "': hash order is nondeterministic across "
                        "implementations — sort first, or suppress with a "
                        "justification that the order cannot reach RNG draws "
                        "or output");
          break;
        }
      }
      continue;
    }
    // Explicit iterator walk: tracked.begin()/cbegin()/rbegin().
    if (t.kind == TokKind::kIdent && tracked.count(t.text) &&
        i + 3 < toks.size() && is_punct(toks[i + 1], ".") &&
        (is_ident(toks[i + 2], "begin") || is_ident(toks[i + 2], "cbegin") ||
         is_ident(toks[i + 2], "rbegin")) &&
        is_punct(toks[i + 3], "(")) {
      sink.emit(t, "unordered-iter",
                "iterator over unordered container '" + t.text +
                    "': hash order is nondeterministic across "
                    "implementations — sort first, or suppress with a "
                    "justification");
    }
  }
}

// ---------------------------------------------------------- pointer-order

void rule_pointer_order(const std::vector<Token>& toks, RuleSink& sink) {
  for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
    if (!is_ident(toks[i], "std") || !is_punct(toks[i + 1], "::")) continue;
    const Token& x = toks[i + 2];
    if (x.kind != TokKind::kIdent || x.pp) continue;

    const bool ordered = ordered_container_names().count(x.text) > 0;
    const bool functor =
        x.text == "hash" || x.text == "less" || x.text == "greater";
    if (!ordered && !functor) continue;
    if (!is_punct(toks[i + 3], "<")) continue;
    const std::size_t close = match_angle(toks, i + 3);
    if (close == std::string::npos) continue;

    // Scan the first template argument (the key type) for a raw pointer.
    int angle = 0;
    for (std::size_t j = i + 4; j < close; ++j) {
      const Token& u = toks[j];
      if (u.kind != TokKind::kPunct) continue;
      if (u.text == "<")
        ++angle;
      else if (u.text == ">")
        --angle;
      else if (angle == 0 && u.text == "," && ordered)
        break;  // only the key type matters for map/set
      else if (u.text == "*") {
        sink.emit(x, "pointer-order",
                  ordered
                      ? "std::" + x.text +
                            " keyed by a raw pointer: address order is "
                            "run-dependent (ASLR), so iteration order would "
                            "differ between executions — key by index or id "
                            "instead"
                      : "std::" + x.text +
                            " over a raw pointer: address-based "
                            "hashing/comparison is run-dependent — hash or "
                            "compare a stable id instead");
        break;
      }
    }
  }
}

// --------------------------------------------------------------- no-alloc

void rule_no_alloc(const std::vector<Token>& toks,
                   const std::vector<Region>& regions, RuleSink& sink) {
  if (regions.empty()) return;
  auto in_region = [&](std::uint32_t line) {
    for (const Region& r : regions)
      if (line >= r.begin_line && line <= r.end_line) return true;
    return false;
  };

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent || !in_region(t.line)) continue;
    const Token* next = i + 1 < toks.size() ? &toks[i + 1] : nullptr;
    const Token* prev = i > 0 ? &toks[i - 1] : nullptr;

    if (t.text == "new" && (!prev || !is_punct(*prev, "::"))) {
      sink.emit(t, "no-alloc",
                "operator new inside a no-alloc region: the steady-state hot "
                "path must not touch the heap");
      continue;
    }
    if (alloc_calls().count(t.text) && next &&
        (is_punct(*next, "(") || is_punct(*next, "<"))) {
      sink.emit(t, "no-alloc",
                t.text + " inside a no-alloc region: the steady-state hot "
                         "path must not touch the heap");
      continue;
    }
    if (prev && (is_punct(*prev, ".") || is_punct(*prev, "->")) &&
        growth_calls().count(t.text) && next && is_punct(*next, "(")) {
      sink.emit(t, "no-alloc",
                "." + t.text +
                    "() inside a no-alloc region can grow its container: "
                    "prove the capacity is warm and suppress with that "
                    "justification, or hoist the growth out of the region");
      continue;
    }
    if (t.text == "std" && next && is_punct(*next, "::") &&
        i + 2 < toks.size() && toks[i + 2].kind == TokKind::kIdent &&
        allocating_std_types().count(toks[i + 2].text)) {
      sink.emit(toks[i + 2], "no-alloc",
                "std::" + toks[i + 2].text +
                    " referenced inside a no-alloc region: node-based / "
                    "allocating types do not belong on the hot path");
      ++i;  // skip past "::" so the type name is not re-examined
      continue;
    }
  }
}

}  // namespace

const std::vector<std::string>& rule_names() {
  static const std::vector<std::string> kNames = {
      "banned-rng", "unordered-iter", "pointer-order", "no-alloc",
      "directive"};
  return kNames;
}

std::string rule_description(const std::string& rule) {
  if (rule == "banned-rng")
    return "nondeterminism sources (std::random_device, rand, time, "
           "*_clock::now, std::this_thread, std::*_distribution, "
           "std::shuffle) — wcle::Rng is the only sanctioned RNG surface";
  if (rule == "unordered-iter")
    return "iteration over unordered containers — hash order must never "
           "reach RNG draws or output order";
  if (rule == "pointer-order")
    return "pointer keys in ordered containers / pointer hashing — address "
           "order is run-dependent";
  if (rule == "no-alloc")
    return "allocation inside // wcle-lint: begin-no-alloc .. end-no-alloc "
           "regions (the zero-alloc hot paths)";
  if (rule == "directive")
    return "malformed wcle-lint comment directives (unknown directive, "
           "unbalanced no-alloc region)";
  return "";
}

void run_rules(const std::string& display_path, const LexResult& lx,
               const std::vector<Region>& regions,
               std::vector<Diagnostic>& out) {
  RuleSink sink{display_path, out};
  rule_banned_rng(lx.tokens, sink);
  rule_unordered_iter(lx.tokens, sink);
  rule_pointer_order(lx.tokens, sink);
  rule_no_alloc(lx.tokens, regions, sink);
}

}  // namespace wcle_lint
