#include "lint/rules.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>

namespace wcle_lint {

namespace {

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t k = std::string(suffix).size();
  return s.size() >= k && s.compare(s.size() - k, k, suffix) == 0;
}

bool is_ident(const Token& t, const char* text) {
  return t.kind == TokKind::kIdent && t.text == text;
}

bool is_punct(const Token& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

/// std:: random engines (all banned: their streams are only as portable as
/// the distributions fed from them, and wcle::Rng is the sanctioned source).
const std::unordered_set<std::string>& banned_engines() {
  static const std::unordered_set<std::string> kSet = {
      "mt19937",       "mt19937_64",   "minstd_rand",
      "minstd_rand0",  "knuth_b",      "default_random_engine",
      "ranlux24",      "ranlux48",     "ranlux24_base",
      "ranlux48_base", "random_device"};
  return kSet;
}

/// Bare C functions whose results depend on wall clock / process state.
const std::unordered_set<std::string>& banned_c_calls() {
  static const std::unordered_set<std::string> kSet = {
      "rand", "srand", "rand_r", "random",        "srandom",
      "time", "clock", "getpid", "gettimeofday",  "timespec_get",
      "drand48", "lrand48", "mrand48"};
  return kSet;
}

const std::unordered_set<std::string>& ordered_container_names() {
  static const std::unordered_set<std::string> kSet = {"map", "set", "multimap",
                                                       "multiset"};
  return kSet;
}

/// The draw surface of wcle::Rng (support/rng.hpp).
const std::unordered_set<std::string>& rng_draw_calls() {
  static const std::unordered_set<std::string> kSet = {
      "next",      "next_below",    "next_in", "next_double",
      "next_bool", "next_binomial", "shuffle", "fork"};
  return kSet;
}

/// Index of the ')' matching the '(' at `open` (paren counting only).
std::size_t match_paren(const std::vector<Token>& toks, std::size_t open) {
  int depth = 1;
  for (std::size_t i = open + 1; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kPunct) continue;
    if (toks[i].text == "(")
      ++depth;
    else if (toks[i].text == ")" && --depth == 0)
      return i;
  }
  return std::string::npos;
}

/// Index of the '}' matching the '{' at `open`.
std::size_t match_brace(const std::vector<Token>& toks, std::size_t open) {
  int depth = 1;
  for (std::size_t i = open + 1; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kPunct) continue;
    if (toks[i].text == "{")
      ++depth;
    else if (toks[i].text == "}" && --depth == 0)
      return i;
  }
  return std::string::npos;
}

struct RuleSink {
  const std::string& path;
  std::vector<Diagnostic>& out;

  void emit(const Token& at, const char* rule, std::string message) {
    out.push_back({path, at.line, at.col, rule, std::move(message)});
  }
};

/// Names declared with an unordered container type in this file (locals,
/// members, parameters — anything of the form
/// `unordered_xxx<...> [&*const]* name` where name is not a function).
std::unordered_set<std::string> unordered_declared_names(
    const std::vector<Token>& toks) {
  std::unordered_set<std::string> tracked;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent || t.pp) continue;
    if (!unordered_container_names().count(t.text)) continue;
    if (i + 1 >= toks.size() || !is_punct(toks[i + 1], "<")) continue;
    const std::size_t close = match_angle(toks, i + 1);
    if (close == std::string::npos) continue;
    std::size_t k = close + 1;
    while (k < toks.size() &&
           (is_punct(toks[k], "&") || is_punct(toks[k], "*") ||
            is_ident(toks[k], "const")))
      ++k;
    if (k + 1 < toks.size() && toks[k].kind == TokKind::kIdent &&
        !is_punct(toks[k + 1], "("))  // a '(' would make it a function decl
      tracked.insert(toks[k].text);
  }
  return tracked;
}

// ------------------------------------------------------------- banned-rng

void rule_banned_rng(const std::vector<Token>& toks, RuleSink& sink) {
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent) continue;
    const Token* next = i + 1 < toks.size() ? &toks[i + 1] : nullptr;
    const Token* prev = i > 0 ? &toks[i - 1] : nullptr;

    // std::X forms.
    if (t.text == "std" && next && is_punct(*next, "::") &&
        i + 2 < toks.size() && toks[i + 2].kind == TokKind::kIdent) {
      const Token& x = toks[i + 2];
      if (banned_engines().count(x.text)) {
        sink.emit(x, "banned-rng",
                  "std::" + x.text +
                      " is banned: all randomness must flow through "
                      "wcle::Rng (support/rng.hpp)");
        continue;
      }
      if (x.text == "this_thread") {
        sink.emit(x, "banned-rng",
                  "std::this_thread is banned in simulation code: "
                  "sleep/yield make timing part of the execution");
        continue;
      }
      if (x.text == "shuffle" || x.text == "random_shuffle") {
        sink.emit(x, "banned-rng",
                  "std::" + x.text +
                      " is banned: its draw order is implementation-defined; "
                      "use Rng::shuffle (support/rng.hpp)");
        continue;
      }
      if (ends_with(x.text, "_distribution")) {
        sink.emit(x, "banned-rng",
                  "std::" + x.text +
                      " is banned: standard distributions are not "
                      "bit-identical across implementations; use the "
                      "explicit distributions on wcle::Rng");
        continue;
      }
      if (banned_c_calls().count(x.text)) {
        sink.emit(x, "banned-rng",
                  "std::" + x.text +
                      " is banned: wall-clock/process state breaks seed-fixed "
                      "reproducibility");
        continue;
      }
    }

    // steady_clock::now / system_clock::now / any *_clock::now.
    if (ends_with(t.text, "_clock") && next && is_punct(*next, "::") &&
        i + 2 < toks.size() && is_ident(toks[i + 2], "now")) {
      sink.emit(t, "banned-rng",
                t.text +
                    "::now() is banned in simulation code: wall-clock reads "
                    "make executions time-dependent (timing belongs in "
                    "bench/CLI layers only)");
      continue;
    }

    // Bare C calls: rand(, time(, ... — not preceded by . -> or ::.
    if (banned_c_calls().count(t.text) && next && is_punct(*next, "(")) {
      if (prev && (is_punct(*prev, ".") || is_punct(*prev, "->") ||
                   is_punct(*prev, "::")))
        continue;  // member/qualified call of an unrelated name (std:: forms
                   // are handled above)
      sink.emit(t, "banned-rng",
                t.text +
                    "() is banned: wall-clock/process state breaks seed-fixed "
                    "reproducibility; use wcle::Rng for randomness");
    }
  }
}

// --------------------------------------------------------- unordered-iter

void rule_unordered_iter(const std::vector<Token>& toks, RuleSink& sink) {
  const std::unordered_set<std::string> tracked =
      unordered_declared_names(toks);
  if (tracked.empty()) return;

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    // Range-for whose range expression mentions a tracked name.
    if (is_ident(t, "for") && i + 1 < toks.size() &&
        is_punct(toks[i + 1], "(")) {
      int depth = 0;
      std::size_t colon = std::string::npos;
      std::size_t close = std::string::npos;
      for (std::size_t j = i + 1; j < toks.size(); ++j) {
        const Token& u = toks[j];
        if (u.kind != TokKind::kPunct) continue;
        if (u.text == "(" || u.text == "[" || u.text == "{")
          ++depth;
        else if (u.text == ")" || u.text == "]" || u.text == "}") {
          if (--depth == 0) {
            close = j;
            break;
          }
        } else if (depth == 1 && u.text == ";") {
          break;  // classic for loop, not range-for
        } else if (depth == 1 && u.text == ":" &&
                   colon == std::string::npos) {
          colon = j;
        }
      }
      if (colon == std::string::npos || close == std::string::npos) continue;
      for (std::size_t j = colon + 1; j < close; ++j) {
        if (toks[j].kind == TokKind::kIdent && tracked.count(toks[j].text)) {
          sink.emit(t, "unordered-iter",
                    "range-for over unordered container '" + toks[j].text +
                        "': hash order is nondeterministic across "
                        "implementations — sort first, or suppress with a "
                        "justification that the order cannot reach RNG draws "
                        "or output");
          break;
        }
      }
      continue;
    }
    // Explicit iterator walk: tracked.begin()/cbegin()/rbegin().
    if (t.kind == TokKind::kIdent && tracked.count(t.text) &&
        i + 3 < toks.size() && is_punct(toks[i + 1], ".") &&
        (is_ident(toks[i + 2], "begin") || is_ident(toks[i + 2], "cbegin") ||
         is_ident(toks[i + 2], "rbegin")) &&
        is_punct(toks[i + 3], "(")) {
      sink.emit(t, "unordered-iter",
                "iterator over unordered container '" + t.text +
                    "': hash order is nondeterministic across "
                    "implementations — sort first, or suppress with a "
                    "justification");
    }
  }
}

// ---------------------------------------------------------- pointer-order

void rule_pointer_order(const std::vector<Token>& toks, RuleSink& sink) {
  for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
    if (!is_ident(toks[i], "std") || !is_punct(toks[i + 1], "::")) continue;
    const Token& x = toks[i + 2];
    if (x.kind != TokKind::kIdent || x.pp) continue;

    const bool ordered = ordered_container_names().count(x.text) > 0;
    const bool functor =
        x.text == "hash" || x.text == "less" || x.text == "greater";
    if (!ordered && !functor) continue;
    if (!is_punct(toks[i + 3], "<")) continue;
    const std::size_t close = match_angle(toks, i + 3);
    if (close == std::string::npos) continue;

    // Scan the first template argument (the key type) for a raw pointer.
    int angle = 0;
    for (std::size_t j = i + 4; j < close; ++j) {
      const Token& u = toks[j];
      if (u.kind != TokKind::kPunct) continue;
      if (u.text == "<")
        ++angle;
      else if (u.text == ">")
        --angle;
      else if (angle == 0 && u.text == "," && ordered)
        break;  // only the key type matters for map/set
      else if (u.text == "*") {
        sink.emit(x, "pointer-order",
                  ordered
                      ? "std::" + x.text +
                            " keyed by a raw pointer: address order is "
                            "run-dependent (ASLR), so iteration order would "
                            "differ between executions — key by index or id "
                            "instead"
                      : "std::" + x.text +
                            " over a raw pointer: address-based "
                            "hashing/comparison is run-dependent — hash or "
                            "compare a stable id instead");
        break;
      }
    }
  }
}

// --------------------------------------------------------------- no-alloc

void rule_no_alloc(const std::vector<Token>& toks,
                   const std::vector<Region>& regions, RuleSink& sink) {
  if (regions.empty()) return;
  auto in_region = [&](std::uint32_t line) {
    for (const Region& r : regions)
      if (line >= r.begin_line && line <= r.end_line) return true;
    return false;
  };

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent || !in_region(t.line)) continue;
    const Token* next = i + 1 < toks.size() ? &toks[i + 1] : nullptr;
    const Token* prev = i > 0 ? &toks[i - 1] : nullptr;

    if (t.text == "new" && (!prev || !is_punct(*prev, "::"))) {
      sink.emit(t, "no-alloc",
                "operator new inside a no-alloc region: the steady-state hot "
                "path must not touch the heap");
      continue;
    }
    if (alloc_calls().count(t.text) && next &&
        (is_punct(*next, "(") || is_punct(*next, "<"))) {
      sink.emit(t, "no-alloc",
                t.text + " inside a no-alloc region: the steady-state hot "
                         "path must not touch the heap");
      continue;
    }
    if (prev && (is_punct(*prev, ".") || is_punct(*prev, "->")) &&
        growth_calls().count(t.text) && next && is_punct(*next, "(")) {
      sink.emit(t, "no-alloc",
                "." + t.text +
                    "() inside a no-alloc region can grow its container: "
                    "prove the capacity is warm and suppress with that "
                    "justification, or hoist the growth out of the region");
      continue;
    }
    if (t.text == "std" && next && is_punct(*next, "::") &&
        i + 2 < toks.size() && toks[i + 2].kind == TokKind::kIdent &&
        allocating_std_types().count(toks[i + 2].text)) {
      sink.emit(toks[i + 2], "no-alloc",
                "std::" + toks[i + 2].text +
                    " referenced inside a no-alloc region: node-based / "
                    "allocating types do not belong on the hot path");
      ++i;  // skip past "::" so the type name is not re-examined
      continue;
    }
  }
}

// --------------------------------------------------------------- rng-flow

void rule_rng_flow(const std::vector<Token>& toks, RuleSink& sink) {
  // (a) by-value Rng parameters and whole-object copies. A copy replays the
  // parent's draw sequence, so two streams silently correlate.
  int paren = 0;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kPunct) {
      if (t.text == "(")
        ++paren;
      else if (t.text == ")")
        --paren;
      continue;
    }
    if (!is_ident(t, "Rng") || t.pp) continue;
    if (i + 2 >= toks.size()) continue;
    const Token& name = toks[i + 1];
    if (name.kind != TokKind::kIdent) continue;
    const Token& after = toks[i + 2];
    if (paren > 0 &&
        (is_punct(after, ",") || is_punct(after, ")") ||
         is_punct(after, "="))) {
      sink.emit(name, "rng-flow",
                "by-value wcle::Rng parameter '" + name.text +
                    "': a copy replays the parent stream, so draws "
                    "correlate — pass Rng& or derive a child with fork(key)");
      continue;
    }
    if (paren == 0 && is_punct(after, "=") && i + 4 < toks.size() &&
        toks[i + 3].kind == TokKind::kIdent && is_punct(toks[i + 4], ";")) {
      sink.emit(name, "rng-flow",
                "copy-initializing '" + name.text + "' from '" +
                    toks[i + 3].text +
                    "' duplicates the stream — derive an independent child "
                    "with fork(key) instead");
      continue;
    }
  }

  // (b) mid-run re-seeding: `x = Rng(...)` as an assignment (construction
  // `Rng x = Rng(seed)` stays sanctioned — that is initialization, which
  // constructors do).
  for (std::size_t i = 1; i + 1 < toks.size(); ++i) {
    if (!is_punct(toks[i], "=")) continue;
    if (toks[i - 1].kind != TokKind::kIdent) continue;
    std::size_t j = i + 1;
    if (j + 1 < toks.size() && is_ident(toks[j], "wcle") &&
        is_punct(toks[j + 1], "::"))
      j += 2;
    if (j + 1 >= toks.size() || !is_ident(toks[j], "Rng") ||
        !is_punct(toks[j + 1], "("))
      continue;
    if (i >= 2 && (is_ident(toks[i - 2], "Rng") ||
                   is_punct(toks[i - 2], "&") || is_punct(toks[i - 2], "*")))
      continue;  // a declaration with initializer, not an assignment
    sink.emit(toks[j], "rng-flow",
              "re-seeding '" + toks[i - 1].text +
                  "' by assigning a fresh Rng: mid-run re-seeding outside a "
                  "constructor breaks the single-seed reproducibility "
                  "contract — derive streams with fork(key)");
  }

  // (c) draws control-dependent on unordered-container queries: hash-table
  // state deciding *whether* a draw happens makes the draw sequence
  // hash-order-dependent.
  const std::unordered_set<std::string> tracked =
      unordered_declared_names(toks);
  if (tracked.empty()) return;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_ident(toks[i], "if") || !is_punct(toks[i + 1], "(")) continue;
    const std::size_t close = match_paren(toks, i + 1);
    if (close == std::string::npos) continue;
    std::string qname;
    for (std::size_t j = i + 2; j + 3 < close; ++j) {
      if (toks[j].kind != TokKind::kIdent || !tracked.count(toks[j].text))
        continue;
      if (!is_punct(toks[j + 1], ".") && !is_punct(toks[j + 1], "->"))
        continue;
      const Token& m = toks[j + 2];
      if ((is_ident(m, "count") || is_ident(m, "find") ||
           is_ident(m, "contains")) &&
          is_punct(toks[j + 3], "(")) {
        qname = toks[j].text;
        break;
      }
    }
    if (qname.empty()) continue;
    // Branch extent: a braced block or a single statement.
    std::size_t from = close + 1, to = std::string::npos;
    if (from < toks.size() && is_punct(toks[from], "{")) {
      to = match_brace(toks, from);
    } else {
      for (std::size_t j = from; j < toks.size(); ++j)
        if (is_punct(toks[j], ";")) {
          to = j;
          break;
        }
    }
    if (to == std::string::npos) continue;
    for (std::size_t j = from; j < to; ++j) {
      const Token& d = toks[j];
      if (d.kind != TokKind::kIdent || !rng_draw_calls().count(d.text))
        continue;
      if (j == 0 ||
          (!is_punct(toks[j - 1], ".") && !is_punct(toks[j - 1], "->")))
        continue;
      if (j + 1 >= toks.size() || !is_punct(toks[j + 1], "(")) continue;
      sink.emit(d, "rng-flow",
                "RNG draw ." + d.text +
                    "() guarded by unordered-container query on '" + qname +
                    "': hash-table state must not decide whether a draw "
                    "happens (the draw sequence becomes "
                    "hash-order-dependent)");
    }
  }
}

}  // namespace

// ----------------------------------------------------- shared vocabulary

const std::unordered_set<std::string>& unordered_container_names() {
  static const std::unordered_set<std::string> kSet = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  return kSet;
}

const std::unordered_set<std::string>& growth_calls() {
  static const std::unordered_set<std::string> kSet = {
      "resize",  "reserve", "push_back",     "emplace_back", "emplace",
      "insert",  "assign",  "shrink_to_fit", "append",       "to_vector"};
  return kSet;
}

const std::unordered_set<std::string>& alloc_calls() {
  static const std::unordered_set<std::string> kSet = {
      "make_unique", "make_shared", "malloc", "calloc", "realloc", "strdup"};
  return kSet;
}

const std::unordered_set<std::string>& allocating_std_types() {
  static const std::unordered_set<std::string> kSet = {
      "map",           "multimap",           "set",
      "multiset",      "list",               "forward_list",
      "deque",         "unordered_map",      "unordered_set",
      "unordered_multimap", "unordered_multiset", "function",
      "string",        "ostringstream",      "stringstream"};
  return kSet;
}

std::size_t match_angle(const std::vector<Token>& toks, std::size_t open) {
  int angle = 1;
  int paren = 0;
  for (std::size_t i = open + 1; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kPunct) continue;
    if (t.text == "(")
      ++paren;
    else if (t.text == ")") {
      if (--paren < 0) return std::string::npos;
    } else if (paren == 0 && t.text == "<")
      ++angle;
    else if (paren == 0 && t.text == ">") {
      if (--angle == 0) return i;
    } else if (t.text == ";" || t.text == "{") {
      return std::string::npos;
    }
  }
  return std::string::npos;
}

// --------------------------------------------------------------- layering

namespace {

/// "…src/wcle/<layer>/…" -> layer; "" when the path is not layer-governed.
std::string layer_of_source(const std::string& path) {
  const std::size_t at = path.find("src/wcle/");
  if (at == std::string::npos) return "";
  const std::size_t from = at + 9;
  const std::size_t slash = path.find('/', from);
  if (slash == std::string::npos) return "";
  return path.substr(from, slash - from);
}

/// "wcle/<layer>/…" -> layer; "" otherwise.
std::string layer_of_include(const std::string& inc) {
  if (inc.compare(0, 5, "wcle/") != 0) return "";
  const std::size_t slash = inc.find('/', 5);
  if (slash == std::string::npos) return "";
  return inc.substr(5, slash - 5);
}

std::string join(const std::vector<std::string>& parts) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += ", ";
    out += parts[i];
  }
  return out;
}

}  // namespace

const std::vector<std::string>* LayerConfig::deps_of(
    const std::string& layer) const {
  for (const auto& entry : allowed)
    if (entry.first == layer) return &entry.second;
  return nullptr;
}

bool LayerConfig::header_allowed(const std::string& layer,
                                 const std::string& path) const {
  for (const auto& e : allow_headers)
    if (e.first == layer && e.second == path) return true;
  return false;
}

LayerConfig parse_layer_config(const std::string& display_path,
                               const std::string& content) {
  LayerConfig cfg;
  std::istringstream in(content);
  std::string raw;
  std::uint32_t lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.resize(hash);
    std::istringstream ls(raw);
    std::string first;
    if (!(ls >> first)) continue;

    if (first == "allow-header") {
      std::string layer, header, extra;
      if (!(ls >> layer >> header) || (ls >> extra)) {
        cfg.errors.push_back({display_path, lineno, 1, "layering",
                              "malformed allow-header line: expected "
                              "'allow-header <layer> <include path>'"});
        continue;
      }
      cfg.allow_headers.push_back({layer, header});
      continue;
    }

    if (first.empty() || first.back() != ':') {
      cfg.errors.push_back({display_path, lineno, 1, "layering",
                            "malformed layer line: expected "
                            "'<layer>: <dep> <dep> ...'"});
      continue;
    }
    const std::string layer = first.substr(0, first.size() - 1);
    if (cfg.deps_of(layer) != nullptr) {
      cfg.errors.push_back({display_path, lineno, 1, "layering",
                            "layer '" + layer + "' declared twice"});
      continue;
    }
    std::vector<std::string> deps;
    std::string dep;
    while (ls >> dep) deps.push_back(dep);
    cfg.allowed.push_back({layer, std::move(deps)});
  }

  // Every declared dependency must itself be a declared layer.
  for (const auto& entry : cfg.allowed)
    for (const std::string& dep : entry.second)
      if (cfg.deps_of(dep) == nullptr)
        cfg.errors.push_back(
            {display_path, 0, 0, "layering",
             "layer '" + entry.first + "' depends on undeclared layer '" +
                 dep + "'"});

  // The declared edges must form a DAG (Kahn's algorithm).
  if (cfg.errors.empty()) {
    std::unordered_map<std::string, std::size_t> indegree;
    for (const auto& entry : cfg.allowed) indegree[entry.first] = 0;
    for (const auto& entry : cfg.allowed)
      for (const std::string& dep : entry.second)
        if (dep != entry.first) ++indegree[entry.first];
    bool progressed = true;
    std::size_t remaining = cfg.allowed.size();
    std::unordered_set<std::string> removed;
    while (progressed && remaining > 0) {
      progressed = false;
      for (const auto& entry : cfg.allowed) {
        if (removed.count(entry.first) || indegree[entry.first] != 0)
          continue;
        removed.insert(entry.first);
        --remaining;
        progressed = true;
        for (auto& other : cfg.allowed)
          if (!removed.count(other.first))
            for (const std::string& dep : other.second)
              if (dep == entry.first) --indegree[other.first];
      }
    }
    if (remaining > 0) {
      std::vector<std::string> cyc;
      for (const auto& entry : cfg.allowed)
        if (!removed.count(entry.first)) cyc.push_back(entry.first);
      cfg.errors.push_back({display_path, 0, 0, "layering",
                            "declared layer dependencies contain a cycle "
                            "among {" +
                                join(cyc) + "}: the DAG must be acyclic"});
    }
  }

  cfg.loaded = cfg.errors.empty();
  return cfg;
}

void check_layering(const std::string& display_path,
                    const std::vector<IncludeDirective>& includes,
                    const LayerConfig& config, std::vector<Diagnostic>& out) {
  if (!config.loaded) return;
  const std::string layer = layer_of_source(display_path);
  if (layer.empty()) return;
  const std::vector<std::string>* deps = config.deps_of(layer);
  if (deps == nullptr) {
    out.push_back({display_path, 1, 1, "layering",
                   "layer '" + layer +
                       "' is not declared in the layering config — add it "
                       "to tools/lint/layers.txt with its allowed "
                       "dependencies"});
    return;
  }
  for (const IncludeDirective& inc : includes) {
    const std::string dep = layer_of_include(inc.path);
    if (dep.empty() || dep == layer) continue;
    if (std::find(deps->begin(), deps->end(), dep) != deps->end()) continue;
    if (config.header_allowed(layer, inc.path)) continue;
    out.push_back({display_path, inc.line, 1, "layering",
                   "include '" + inc.path + "' crosses the layering DAG: '" +
                       layer + "' may only depend on {" + join(*deps) +
                       "} (tools/lint/layers.txt)"});
  }
}

// ----------------------------------------------------------------- driver

const std::vector<std::string>& rule_names() {
  static const std::vector<std::string> kNames = {
      "banned-rng", "unordered-iter", "pointer-order",      "no-alloc",
      "rng-flow",   "layering",       "no-alloc-transitive", "directive"};
  return kNames;
}

std::string rule_description(const std::string& rule) {
  if (rule == "banned-rng")
    return "nondeterminism sources (std::random_device, rand, time, "
           "*_clock::now, std::this_thread, std::*_distribution, "
           "std::shuffle) — wcle::Rng is the only sanctioned RNG surface";
  if (rule == "unordered-iter")
    return "iteration over unordered containers — hash order must never "
           "reach RNG draws or output order";
  if (rule == "pointer-order")
    return "pointer keys in ordered containers / pointer hashing — address "
           "order is run-dependent";
  if (rule == "no-alloc")
    return "allocation inside // wcle-lint: begin-no-alloc .. end-no-alloc "
           "regions (the zero-alloc hot paths); capacity-guarded cold "
           "growth is exempt";
  if (rule == "rng-flow")
    return "wcle::Rng misuse: by-value copies, mid-run re-seeding, and "
           "draws guarded by unordered-container queries";
  if (rule == "layering")
    return "include edges between src/wcle layers that the declared DAG "
           "(tools/lint/layers.txt) does not permit";
  if (rule == "no-alloc-transitive")
    return "call chains from inside a no-alloc region that can reach an "
           "allocation in another function (may-allocate summaries over "
           "the call graph)";
  if (rule == "directive")
    return "malformed wcle-lint comment directives (unknown directive, "
           "unbalanced no-alloc region, stale suppression)";
  return "";
}

void run_rules(const std::string& display_path, const LexResult& lx,
               const std::vector<Region>& regions,
               std::vector<Diagnostic>& out) {
  RuleSink sink{display_path, out};
  rule_banned_rng(lx.tokens, sink);
  rule_unordered_iter(lx.tokens, sink);
  rule_pointer_order(lx.tokens, sink);
  rule_no_alloc(lx.tokens, regions, sink);
  rule_rng_flow(lx.tokens, sink);
}

}  // namespace wcle_lint
