#include "lint/index.hpp"

#include <unordered_set>

namespace wcle_lint {

namespace {

bool is_ident(const Token& t, const char* text) {
  return t.kind == TokKind::kIdent && t.text == text;
}

bool is_punct(const Token& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

/// Keywords that can never start a function-definition name. Control
/// statements are the important entries (an `if (...) {` must not be read as
/// a definition of a function named "if"); the rest are cheap insurance.
const std::unordered_set<std::string>& non_def_keywords() {
  static const std::unordered_set<std::string> kSet = {
      "if",        "else",     "for",       "while",     "do",
      "switch",    "case",     "default",   "return",    "break",
      "continue",  "goto",     "new",       "delete",    "operator",
      "sizeof",    "alignof",  "alignas",   "decltype",  "typeid",
      "static_assert",         "throw",     "catch",     "try",
      "namespace", "using",    "typedef",   "template",  "typename",
      "struct",    "class",    "union",     "enum",      "public",
      "private",   "protected","friend",    "requires",  "concept",
      "co_return", "co_await", "co_yield",  "asm",       "noexcept"};
  return kSet;
}

/// Identifiers followed by '(' that are statements/expressions, not calls.
const std::unordered_set<std::string>& non_call_keywords() {
  static const std::unordered_set<std::string> kSet = {
      "if",     "for",      "while",   "switch",        "return",
      "catch",  "sizeof",   "alignof", "alignas",       "decltype",
      "typeid", "noexcept", "throw",   "static_assert", "assert",
      "new",    "delete",   "defined", "co_return",     "co_await"};
  return kSet;
}

/// Index of the ')' matching the '(' at `open` (paren counting only; braces
/// and angles inside are opaque). npos when unbalanced.
std::size_t match_paren(const std::vector<Token>& toks, std::size_t open) {
  int depth = 1;
  for (std::size_t i = open + 1; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kPunct) continue;
    if (toks[i].text == "(")
      ++depth;
    else if (toks[i].text == ")" && --depth == 0)
      return i;
  }
  return std::string::npos;
}

/// Index of the '}' matching the '{' at `open`. npos when unbalanced.
std::size_t match_brace(const std::vector<Token>& toks, std::size_t open) {
  int depth = 1;
  for (std::size_t i = open + 1; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kPunct) continue;
    if (toks[i].text == "{")
      ++depth;
    else if (toks[i].text == "}" && --depth == 0)
      return i;
  }
  return std::string::npos;
}

/// True when the token range (open, close) contains a pool-capacity query:
/// a member call to size()/capacity()/empty(). This is the shape every
/// cold-start growth guard in the data plane takes.
bool has_capacity_query(const std::vector<Token>& toks, std::size_t open,
                        std::size_t close) {
  for (std::size_t i = open + 1; i + 1 < close; ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent) continue;
    if (t.text != "size" && t.text != "capacity" && t.text != "empty")
      continue;
    if (i == 0) continue;
    const Token& prev = toks[i - 1];
    if ((is_punct(prev, ".") || is_punct(prev, "->")) &&
        is_punct(toks[i + 1], "("))
      return true;
  }
  return false;
}

bool in_any_region(const std::vector<Region>& regions, std::uint32_t line) {
  for (const Region& r : regions)
    if (line >= r.begin_line && line <= r.end_line) return true;
  return false;
}

/// Guard-aware scan of one function body: records every call site and every
/// allocation-evidence site, classifying the latter as guarded when it is
/// control-dependent on a capacity query (directly, via the else branch of a
/// capacity `if`, or after a capacity `if` that early-returns).
void scan_body(const std::vector<Token>& toks, std::size_t body_open,
               std::size_t body_close, const std::vector<Region>& regions,
               FunctionInfo& fn) {
  struct Scope {
    bool guarded = false;      // every site in this scope is guarded
    bool cap_if = false;       // this scope is a capacity-if block
    bool saw_return = false;   // return anywhere inside (propagates up)
    bool saw_breakish = false; // break/continue at this scope's direct level
    bool last_if_cap = false;  // most recently closed if at this level was
                               // capacity-guarded (binds a following else)
  };
  std::vector<Scope> sc(1);
  int paren = 0;

  // Pending branch: set when the token just closed an if/else header, so the
  // next token decides between a block and a single-statement branch.
  bool pend_if = false, pend_else = false, pend_cap = false;
  // Open if-conditions awaiting their ')': (close index, capacity flag).
  std::vector<std::pair<std::size_t, bool>> if_stack;
  // Single-statement guard, active until ';' at the recorded depth.
  bool sg_active = false, sg_cap = false, sg_breakish = false;
  std::size_t sg_scopes = 0;
  int sg_paren = 0;

  auto guarded_here = [&]() {
    return sc.back().guarded || (sg_active && sg_cap);
  };

  for (std::size_t i = body_open + 1; i < body_close; ++i) {
    const Token& t = toks[i];

    // Resolve a pending branch head first: the current token is the first
    // token after `if (...)` or `else`.
    if (pend_if || pend_else) {
      const bool cap = pend_cap;
      pend_if = pend_else = false;
      pend_cap = false;
      if (is_punct(t, "{")) {
        Scope s;
        s.guarded = guarded_here() || cap;
        s.cap_if = cap;
        sc.push_back(s);
        continue;
      }
      if (!is_ident(t, "if")) {  // `else if` re-derives its own guard below
        sg_active = true;
        sg_cap = cap;
        sg_breakish = is_ident(t, "return") || is_ident(t, "break") ||
                      is_ident(t, "continue");
        sg_scopes = sc.size();
        sg_paren = paren;
      }
      // fall through: the token itself may open a condition / be a call.
    }

    if (t.kind == TokKind::kPunct) {
      if (t.text == "(") {
        ++paren;
      } else if (t.text == ")") {
        --paren;
        if (!if_stack.empty() && if_stack.back().first == i) {
          pend_if = true;
          pend_cap = if_stack.back().second;
          if_stack.pop_back();
        }
      } else if (t.text == "{") {
        Scope s;
        s.guarded = guarded_here();
        sc.push_back(s);
      } else if (t.text == "}") {
        if (sc.size() > 1) {
          const Scope closed = sc.back();
          sc.pop_back();
          sc.back().saw_return |= closed.saw_return;
          sc.back().last_if_cap = closed.cap_if;
          if (closed.cap_if && (closed.saw_return || closed.saw_breakish))
            sc.back().guarded = true;  // early-return pool hit: the rest of
                                       // this scope is the cold path
          if (sg_active && sc.size() == sg_scopes) sg_active = false;
        }
      } else if (t.text == ";") {
        if (sg_active && paren == sg_paren && sc.size() == sg_scopes) {
          if (sg_cap && sg_breakish) sc.back().guarded = true;
          sg_active = false;
        }
      }
      continue;
    }

    if (t.kind != TokKind::kIdent) continue;

    if (t.text == "if") {
      std::size_t p = i + 1;
      if (p < toks.size() && is_ident(toks[p], "constexpr")) ++p;
      if (p < toks.size() && is_punct(toks[p], "(")) {
        const std::size_t close = match_paren(toks, p);
        if (close != std::string::npos && close < body_close)
          if_stack.push_back({close, has_capacity_query(toks, p, close)});
      }
      continue;
    }
    if (t.text == "else") {
      pend_else = true;
      pend_cap = sc.back().last_if_cap;
      continue;
    }
    if (t.text == "return") {
      sc.back().saw_return = true;
      continue;
    }
    if (t.text == "break" || t.text == "continue") {
      sc.back().saw_breakish = true;
      continue;
    }

    const Token* prev = i > 0 ? &toks[i - 1] : nullptr;
    const Token* next = i + 1 < toks.size() ? &toks[i + 1] : nullptr;

    // ---- allocation evidence (same vocabulary as the lexical no-alloc
    // rule, but everywhere in the body, with guard classification).
    if (t.text == "new" && (!prev || !is_punct(*prev, "::"))) {
      fn.alloc_sites.push_back(
          {t.line, t.col, "operator new", guarded_here()});
      continue;
    }
    if (alloc_calls().count(t.text) && next &&
        (is_punct(*next, "(") || is_punct(*next, "<"))) {
      fn.alloc_sites.push_back({t.line, t.col, t.text, guarded_here()});
      continue;
    }
    if (prev && (is_punct(*prev, ".") || is_punct(*prev, "->")) &&
        growth_calls().count(t.text) && next && is_punct(*next, "(")) {
      fn.alloc_sites.push_back(
          {t.line, t.col, "." + t.text + "()", guarded_here()});
      continue;
    }
    if (t.text == "std" && next && is_punct(*next, "::") &&
        i + 2 < toks.size() && toks[i + 2].kind == TokKind::kIdent &&
        allocating_std_types().count(toks[i + 2].text)) {
      fn.alloc_sites.push_back({toks[i + 2].line, toks[i + 2].col,
                                "std::" + toks[i + 2].text, guarded_here()});
      ++i;  // skip "::" so the type name is not re-read as a call
      continue;
    }

    // ---- call sites: ident '(' or ident '<...>' '('.
    if (non_call_keywords().count(t.text)) continue;
    std::size_t after = i + 1;
    if (after < toks.size() && is_punct(toks[after], "<")) {
      const std::size_t close = match_angle(toks, after);
      if (close != std::string::npos) after = close + 1;
    }
    if (after >= toks.size() || !is_punct(toks[after], "(")) continue;

    CallSite cs;
    cs.callee = t.text;
    cs.line = t.line;
    cs.col = t.col;
    cs.in_no_alloc_region = in_any_region(regions, t.line);
    if (prev && (is_punct(*prev, ".") || is_punct(*prev, "->"))) {
      cs.member = true;
    } else if (prev && is_punct(*prev, "::")) {
      // Immediate qualifier, plus the chain head for the std:: check:
      // wcle::trace::f -> qualifier "trace"; std::move -> qualifier "std".
      std::size_t q = i - 1;  // the "::"
      std::string immediate, head;
      while (q >= 1 && is_punct(toks[q], "::") &&
             toks[q - 1].kind == TokKind::kIdent) {
        head = toks[q - 1].text;
        if (immediate.empty()) immediate = head;
        if (q < 2) break;
        q -= 2;
      }
      cs.qualifier = (head == "std") ? "std" : immediate;
    }
    fn.calls.push_back(std::move(cs));
  }
}

}  // namespace

FileIndex build_index(const std::string& path, const LexResult& lx,
                      const std::vector<Region>& regions) {
  FileIndex out;
  out.path = path;
  out.includes = lx.includes;

  const std::vector<Token>& toks = lx.tokens;
  std::size_t i = 0;
  while (i < toks.size()) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent || t.pp) {
      ++i;
      continue;
    }
    if (non_def_keywords().count(t.text)) {
      ++i;
      continue;
    }
    // A member-access expression can never head a definition.
    if (i > 0 && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"))) {
      ++i;
      continue;
    }

    // Qualified-id: ident ('<'...'>')? ("::" ident ('<'...'>')?)* .
    std::vector<std::string> parts;
    std::size_t j = i;
    bool bad_part = false;
    while (j < toks.size() && toks[j].kind == TokKind::kIdent) {
      if (non_def_keywords().count(toks[j].text)) {
        bad_part = true;
        break;
      }
      parts.push_back(toks[j].text);
      ++j;
      if (j < toks.size() && is_punct(toks[j], "<")) {
        const std::size_t close = match_angle(toks, j);
        if (close == std::string::npos) break;
        j = close + 1;
      }
      if (j < toks.size() && is_punct(toks[j], "::"))
        ++j;
      else
        break;
    }
    if (bad_part || parts.empty() || j >= toks.size() ||
        !is_punct(toks[j], "(")) {
      i = (j > i) ? j : i + 1;
      continue;
    }

    const std::size_t close_paren = match_paren(toks, j);
    if (close_paren == std::string::npos) {
      i = j + 1;
      continue;
    }

    // Post-parameter decorations: cv/ref qualifiers, noexcept(...),
    // override/final, trailing return type.
    std::size_t k = close_paren + 1;
    while (k < toks.size()) {
      const Token& d = toks[k];
      if (is_ident(d, "const") || is_ident(d, "override") ||
          is_ident(d, "final") || is_ident(d, "mutable") ||
          is_punct(d, "&") || is_punct(d, "*")) {
        ++k;
        continue;
      }
      if (is_ident(d, "noexcept")) {
        ++k;
        if (k < toks.size() && is_punct(toks[k], "(")) {
          const std::size_t nc = match_paren(toks, k);
          if (nc == std::string::npos) break;
          k = nc + 1;
        }
        continue;
      }
      if (is_punct(d, "->")) {  // trailing return type
        ++k;
        while (k < toks.size() &&
               (toks[k].kind == TokKind::kIdent || is_punct(toks[k], "::") ||
                is_punct(toks[k], "*") || is_punct(toks[k], "&"))) {
          ++k;
          if (k < toks.size() && is_punct(toks[k], "<")) {
            const std::size_t ac = match_angle(toks, k);
            if (ac == std::string::npos) break;
            k = ac + 1;
          }
        }
        continue;
      }
      break;
    }
    if (k >= toks.size()) {
      i = close_paren + 1;
      continue;
    }

    // Constructor init list: `: member(init), base{init} ... {`.
    if (is_punct(toks[k], ":")) {
      ++k;
      bool ok = true;
      while (ok && k < toks.size() && !is_punct(toks[k], "{")) {
        // qualified, possibly templated initializer name
        if (toks[k].kind != TokKind::kIdent) {
          ok = false;
          break;
        }
        while (k < toks.size() && toks[k].kind == TokKind::kIdent) {
          ++k;
          if (k < toks.size() && is_punct(toks[k], "<")) {
            const std::size_t ac = match_angle(toks, k);
            if (ac == std::string::npos) {
              ok = false;
              break;
            }
            k = ac + 1;
          }
          if (k < toks.size() && is_punct(toks[k], "::"))
            ++k;
          else
            break;
        }
        if (!ok || k >= toks.size()) {
          ok = false;
          break;
        }
        if (is_punct(toks[k], "(")) {
          const std::size_t pc = match_paren(toks, k);
          if (pc == std::string::npos) {
            ok = false;
            break;
          }
          k = pc + 1;
        } else if (is_punct(toks[k], "{")) {
          const std::size_t bc = match_brace(toks, k);
          if (bc == std::string::npos) {
            ok = false;
            break;
          }
          k = bc + 1;
        } else {
          ok = false;
          break;
        }
        if (k < toks.size() && is_punct(toks[k], ",")) ++k;
      }
      if (!ok || k >= toks.size() || !is_punct(toks[k], "{")) {
        i = close_paren + 1;
        continue;
      }
    }

    if (!is_punct(toks[k], "{")) {
      i = close_paren + 1;
      continue;
    }

    const std::size_t body_close = match_brace(toks, k);
    if (body_close == std::string::npos) {
      i = k + 1;
      continue;
    }

    FunctionInfo fn;
    fn.name = parts.back();
    if (parts.size() >= 2) fn.qualifier = parts[parts.size() - 2];
    fn.display = fn.qualifier.empty() ? fn.name : fn.qualifier + "::" + fn.name;
    fn.line = t.line;
    scan_body(toks, k, body_close, regions, fn);
    out.functions.push_back(std::move(fn));

    // Re-scan inside the body so nested class methods are indexed too.
    i = k + 1;
  }

  return out;
}

}  // namespace wcle_lint
