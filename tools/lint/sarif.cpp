#include "lint/sarif.hpp"

#include <sstream>

namespace wcle_lint {

namespace {

void result_location(std::ostream& os, const std::string& file,
                     std::uint32_t line, std::uint32_t col) {
  os << "\"locations\":[{\"physicalLocation\":{\"artifactLocation\":{\"uri\":";
  json_escape(os, file);
  // SARIF regions are 1-based; the linter uses 0 for whole-file findings,
  // which SARIF does not allow.
  os << "},\"region\":{\"startLine\":" << (line == 0 ? 1 : line)
     << ",\"startColumn\":" << (col == 0 ? 1 : col) << "}}}]";
}

}  // namespace

std::string to_sarif(const LintReport& report,
                     const std::vector<std::string>& roots) {
  std::ostringstream os;
  os << "{\"$schema\":"
        "\"https://json.schemastore.org/sarif-2.1.0.json\","
        "\"version\":\"2.1.0\",\"runs\":[{";

  // Tool + rule metadata.
  os << "\"tool\":{\"driver\":{\"name\":\"wcle_lint\",\"version\":";
  json_escape(os, kLintVersion);
  os << ",\"informationUri\":"
        "\"https://github.com/wcle/wcle/blob/main/tools/lint/README.md\","
        "\"rules\":[";
  const auto& names = rule_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i > 0) os << ",";
    os << "{\"id\":";
    json_escape(os, names[i]);
    os << ",\"shortDescription\":{\"text\":";
    json_escape(os, rule_description(names[i]));
    os << "}}";
  }
  os << "]}},";

  // Provenance: the roots the run was invoked over.
  os << "\"invocations\":[{\"executionSuccessful\":"
     << (report.errors.empty() ? "true" : "false") << ",\"arguments\":[";
  for (std::size_t i = 0; i < roots.size(); ++i) {
    if (i > 0) os << ",";
    json_escape(os, roots[i]);
  }
  os << "]}],";

  // Findings: active ones as errors, suppressed ones carrying their audited
  // justification (kind inSource keeps them out of default views).
  os << "\"results\":[";
  bool first = true;
  for (const Diagnostic& d : report.diagnostics) {
    if (!first) os << ",";
    first = false;
    os << "{\"ruleId\":";
    json_escape(os, d.rule);
    os << ",\"level\":\"error\",\"message\":{\"text\":";
    json_escape(os, d.message);
    os << "},";
    result_location(os, d.file, d.line, d.col);
    os << "}";
  }
  for (const SuppressedDiagnostic& s : report.suppressed) {
    if (!first) os << ",";
    first = false;
    os << "{\"ruleId\":";
    json_escape(os, s.rule);
    os << ",\"level\":\"note\",\"message\":{\"text\":";
    json_escape(os, "suppressed in source: " + s.reason);
    os << "},";
    result_location(os, s.file, s.line, 1);
    os << ",\"suppressions\":[{\"kind\":\"inSource\",\"justification\":";
    json_escape(os, s.reason);
    os << "}]}";
  }
  os << "]}]}";
  return os.str();
}

}  // namespace wcle_lint
