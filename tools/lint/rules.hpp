// The WCLE-specific lint rules. Each rule is a lexical pass over the token
// stream produced by lexer.hpp; diagnostics carry file:line:col positions and
// a stable rule name that the suppression syntax references
// (`// wcle-lint: <rule>-ok(reason)`, see linter.hpp).
//
// Rules:
//   banned-rng     (D1)  nondeterminism sources outside support/rng.hpp: the
//                        library's reproducibility contract is that every
//                        random draw flows from a single 64-bit seed through
//                        wcle::Rng, whose distributions are implemented
//                        explicitly because the standard's are not
//                        bit-identical across implementations.
//   unordered-iter (D2)  iteration (range-for or .begin()) over a variable
//                        declared as an unordered container: hash order is
//                        implementation- and run-dependent, so it must never
//                        feed RNG-relevant processing or output order.
//   pointer-order  (D3)  pointer keys in ordered containers or pointer
//                        hashing/comparators: address order differs between
//                        runs, so it is nondeterminism in disguise.
//   no-alloc       (A1)  allocation inside a region annotated
//                        `// wcle-lint: begin-no-alloc` .. `end-no-alloc`:
//                        operator new, make_unique/make_shared, growth calls
//                        (resize/push_back/...), node-based container or
//                        std::function/std::string mentions, and IdSpan
//                        materialization (to_vector).
//   directive            malformed wcle-lint directives: unknown directive
//                        text, begin-no-alloc without end, end without begin.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lint/lexer.hpp"

namespace wcle_lint {

struct Diagnostic {
  std::string file;
  std::uint32_t line = 0;
  std::uint32_t col = 0;
  std::string rule;
  std::string message;
};

/// A no-alloc source region, in inclusive line numbers (the lines holding the
/// begin/end markers themselves are included; markers sit on their own lines).
struct Region {
  std::uint32_t begin_line = 0;
  std::uint32_t end_line = 0;
};

/// Names of every rule that can fire on source tokens (excludes "directive",
/// which the linter emits while parsing annotations).
const std::vector<std::string>& rule_names();

/// One-line description for --list-rules.
std::string rule_description(const std::string& rule);

/// Runs every token-level rule over `lx`, appending to `out`. `regions` are
/// the no-alloc regions parsed from the file's comments; `display_path` is
/// stamped into each diagnostic.
void run_rules(const std::string& display_path, const LexResult& lx,
               const std::vector<Region>& regions,
               std::vector<Diagnostic>& out);

}  // namespace wcle_lint
