// The WCLE-specific lint rules. The lexical rules are passes over the token
// stream produced by lexer.hpp; the interprocedural rules (no-alloc
// transitive, layering) additionally consume the function index
// (index.hpp/callgraph.hpp). Diagnostics carry file:line:col positions and a
// stable rule name that the suppression syntax references
// (`// wcle-lint: <rule>-ok(reason)`, see linter.hpp).
//
// Lexical rules:
//   banned-rng     (D1)  nondeterminism sources outside support/rng.hpp: the
//                        library's reproducibility contract is that every
//                        random draw flows from a single 64-bit seed through
//                        wcle::Rng, whose distributions are implemented
//                        explicitly because the standard's are not
//                        bit-identical across implementations.
//   unordered-iter (D2)  iteration (range-for or .begin()) over a variable
//                        declared as an unordered container: hash order is
//                        implementation- and run-dependent, so it must never
//                        feed RNG-relevant processing or output order.
//   pointer-order  (D3)  pointer keys in ordered containers or pointer
//                        hashing/comparators: address order differs between
//                        runs, so it is nondeterminism in disguise.
//   no-alloc       (A1)  allocation inside a region annotated
//                        `// wcle-lint: begin-no-alloc` .. `end-no-alloc`:
//                        operator new, make_unique/make_shared, growth calls
//                        (resize/push_back/...), node-based container or
//                        std::function/std::string mentions, and IdSpan
//                        materialization (to_vector). Sites that are
//                        capacity-guarded (control-dependent on a
//                        size/capacity/empty query — the cold-start growth
//                        shape) are machine-checked facts, not findings.
//   rng-flow       (D4)  wcle::Rng misuse: by-value Rng parameters or
//                        copy-initialization (a copy replays the stream),
//                        mid-run re-seeding via `x = Rng(...)` (fork() is
//                        the sanctioned way to derive a stream), and RNG
//                        draws control-dependent on unordered-container
//                        queries (hash-table state deciding whether a draw
//                        happens is how hash-order bugs reach the stream).
//   directive            malformed wcle-lint directives: unknown directive
//                        text, begin-no-alloc without end, end without
//                        begin, and suppressions that never fire (stale).
//
// Interprocedural rules (driven from linter.cpp over the merged index):
//   no-alloc-transitive (A2)  a call chain from inside a no-alloc region
//                        that can reach an allocation in another function,
//                        reported with the full chain.
//   layering       (L1)  an include edge between src/wcle/<layer> modules
//                        that the declared DAG (tools/lint/layers.txt) does
//                        not permit.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "lint/lexer.hpp"

namespace wcle_lint {

struct Diagnostic {
  std::string file;
  std::uint32_t line = 0;
  std::uint32_t col = 0;
  std::string rule;
  std::string message;
};

/// A no-alloc source region, in inclusive line numbers (the lines holding the
/// begin/end markers themselves are included; markers sit on their own lines).
struct Region {
  std::uint32_t begin_line = 0;
  std::uint32_t end_line = 0;
};

/// Names of every rule that can fire (excludes "directive", which the linter
/// emits while parsing annotations).
const std::vector<std::string>& rule_names();

/// One-line description for --list-rules.
std::string rule_description(const std::string& rule);

/// Runs every token-level rule over `lx`, appending to `out`. `regions` are
/// the no-alloc regions parsed from the file's comments; `display_path` is
/// stamped into each diagnostic.
void run_rules(const std::string& display_path, const LexResult& lx,
               const std::vector<Region>& regions,
               std::vector<Diagnostic>& out);

// ---------------------------------------------------------------------------
// Shared token vocabulary (used by the rules and the index scanner).
// ---------------------------------------------------------------------------

/// Member calls that can grow their receiver (allocate).
const std::unordered_set<std::string>& growth_calls();

/// Allocating free functions / factories (make_unique, malloc, ...).
const std::unordered_set<std::string>& alloc_calls();

/// std:: types whose construction allocates per element or per call.
const std::unordered_set<std::string>& allocating_std_types();

/// unordered_map/set/multimap/multiset.
const std::unordered_set<std::string>& unordered_container_names();

/// Index of the '>' closing the '<' at `open` (depth-aware, tolerant of
/// parentheses inside template arguments). Returns npos when the '<' turns
/// out to be a comparison (a ';' or unbalanced close intervenes).
std::size_t match_angle(const std::vector<Token>& toks, std::size_t open);

// ---------------------------------------------------------------------------
// Layering (L1): the declared dependency DAG of src/wcle.
// ---------------------------------------------------------------------------

/// Parsed tools/lint/layers.txt. Format, one entry per line:
///   <layer>: <allowed dep> <allowed dep> ...
///   allow-header <layer> <include path>   # named exception (e.g. the
///                                         # adapter seam on api/algorithm.hpp)
/// `#` starts a comment. The declared edges must form a DAG; cycles and
/// malformed lines surface as "layering" diagnostics against the config
/// file itself.
struct LayerConfig {
  /// layer -> layers it may include (self always allowed).
  std::vector<std::pair<std::string, std::vector<std::string>>> allowed;
  /// (layer, exact include path) exceptions.
  std::vector<std::pair<std::string, std::string>> allow_headers;
  /// Parse/validation errors (rule "layering", stamped at the config file).
  std::vector<Diagnostic> errors;
  bool loaded = false;

  const std::vector<std::string>* deps_of(const std::string& layer) const;
  bool header_allowed(const std::string& layer, const std::string& path) const;
};

/// Parses and validates a layers file (acyclicity included).
LayerConfig parse_layer_config(const std::string& display_path,
                               const std::string& content);

/// Checks one file's quoted includes against the DAG. Only files whose path
/// contains "src/wcle/<layer>/" participate; others are exempt.
void check_layering(const std::string& display_path,
                    const std::vector<IncludeDirective>& includes,
                    const LayerConfig& config, std::vector<Diagnostic>& out);

}  // namespace wcle_lint
