#include "lint/linter.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "lint/callgraph.hpp"
#include "lint/index.hpp"

namespace wcle_lint {

const char kLintVersion[] = "2.0.0";

namespace {

constexpr const char* kDirectivePrefix = "wcle-lint:";

struct Suppression {
  std::uint32_t comment_line = 0;
  std::string rule;
  std::string reason;
  bool trailing = false;  ///< trailing comments bind to their own line only

  bool covers(std::uint32_t line) const {
    if (line == comment_line) return true;
    // A standalone suppression binds to the next line exactly: a blank line
    // (or anything else) between annotation and finding breaks the binding.
    return !trailing && line == comment_line + 1;
  }
};

struct Directives {
  std::vector<Suppression> suppressions;
  std::vector<Region> regions;
  std::vector<Diagnostic> errors;  ///< rule "directive"
};

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  std::size_t e = s.find_last_not_of(" \t");
  return b == std::string::npos ? "" : s.substr(b, e - b + 1);
}

/// Parses every wcle-lint directive out of a file's comments. Only line
/// comments participate: a directive-looking string inside a /* */ block is
/// prose (and string literals never reach the comment list at all).
Directives parse_directives(const std::string& path,
                            const std::vector<Comment>& comments) {
  Directives out;
  std::uint32_t open_begin = 0;  // line of the currently open begin marker

  for (const Comment& c : comments) {
    if (c.block) continue;
    std::size_t pos = c.text.find(kDirectivePrefix);
    if (pos == std::string::npos) continue;
    const std::string body =
        trim(c.text.substr(pos + std::string(kDirectivePrefix).size()));

    if (body == "begin-no-alloc") {
      if (open_begin != 0) {
        out.errors.push_back({path, c.line, 1, "directive",
                              "begin-no-alloc while the region opened on "
                              "line " +
                                  std::to_string(open_begin) +
                                  " is still open (regions do not nest)"});
      } else {
        open_begin = c.line;
      }
      continue;
    }
    if (body == "end-no-alloc") {
      if (open_begin == 0) {
        out.errors.push_back({path, c.line, 1, "directive",
                              "end-no-alloc without a matching "
                              "begin-no-alloc"});
      } else {
        out.regions.push_back({open_begin, c.line});
        open_begin = 0;
      }
      continue;
    }

    // <rule>-ok(reason)
    const std::size_t ok = body.find("-ok(");
    const std::size_t close = body.rfind(')');
    if (ok != std::string::npos && close != std::string::npos &&
        close > ok + 3) {
      const std::string rule = body.substr(0, ok);
      const std::string reason = trim(body.substr(ok + 4, close - ok - 4));
      const auto& names = rule_names();
      if (std::find(names.begin(), names.end(), rule) == names.end()) {
        out.errors.push_back({path, c.line, 1, "directive",
                              "suppression names unknown rule '" + rule +
                                  "' (see wcle_lint --list-rules)"});
      } else if (reason.empty()) {
        out.errors.push_back({path, c.line, 1, "directive",
                              "suppression of '" + rule +
                                  "' has an empty reason: every suppression "
                                  "must carry a written justification"});
      } else {
        out.suppressions.push_back({c.line, rule, reason, c.trailing});
      }
      continue;
    }

    out.errors.push_back(
        {path, c.line, 1, "directive",
         "unrecognized wcle-lint directive '" + body +
             "': expected begin-no-alloc, end-no-alloc, or <rule>-ok(reason)"});
  }

  if (open_begin != 0)
    out.errors.push_back({path, open_begin, 1, "directive",
                          "begin-no-alloc region never closed (missing "
                          "end-no-alloc before end of file)"});
  return out;
}

bool rule_enabled(const LintOptions& options, const std::string& rule) {
  if (options.rules.empty()) return true;
  return std::find(options.rules.begin(), options.rules.end(), rule) !=
         options.rules.end();
}

/// Everything the per-file pass produces. Cacheable: depends only on the
/// file's content (every rule runs; the --rule filter applies at merge).
struct FileAnalysis {
  std::string display;
  std::vector<Diagnostic> raw;  ///< lexical findings + directive errors
  std::vector<Suppression> sups;
  std::vector<Region> regions;
  FileIndex index;
};

FileAnalysis analyze_source(const std::string& display,
                            const std::string& source) {
  FileAnalysis a;
  a.display = display;
  const LexResult lx = lex(source);
  Directives dirs = parse_directives(display, lx.comments);
  a.sups = std::move(dirs.suppressions);
  a.regions = std::move(dirs.regions);
  run_rules(display, lx, a.regions, a.raw);
  for (Diagnostic& d : dirs.errors) a.raw.push_back(std::move(d));
  a.index = build_index(display, lx, a.regions);
  return a;
}

// ------------------------------------------------------------------ cache

std::uint64_t fnv1a(const std::string& s, std::uint64_t h) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string cache_key(const std::string& display, const std::string& source) {
  std::uint64_t h = 1469598103934665603ULL;
  h = fnv1a(kLintVersion, h);
  h = fnv1a(display, h);
  h = fnv1a(source, h);
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return std::string(buf) + ".wlc";
}

/// One record per line: a tag, fixed numeric/identifier fields, and — when
/// the record carries free text — a '\t' followed by the text to the end of
/// the line (diagnostic messages and reasons never contain newlines).
std::string serialize_analysis(const FileAnalysis& a) {
  std::ostringstream os;
  os << "wcle_lint_cache " << kLintVersion << "\n";
  for (const Diagnostic& d : a.raw)
    os << "D " << d.line << " " << d.col << " " << d.rule << "\t" << d.message
       << "\n";
  for (const Suppression& s : a.sups)
    os << "S " << s.comment_line << " " << (s.trailing ? 1 : 0) << " "
       << s.rule << "\t" << s.reason << "\n";
  for (const Region& r : a.regions)
    os << "R " << r.begin_line << " " << r.end_line << "\n";
  for (const IncludeDirective& inc : a.index.includes)
    os << "I " << inc.line << "\t" << inc.path << "\n";
  for (const FunctionInfo& fn : a.index.functions) {
    os << "F " << fn.line << " " << fn.name << " "
       << (fn.qualifier.empty() ? "-" : fn.qualifier) << "\n";
    for (const CallSite& c : fn.calls)
      os << "C " << c.line << " " << c.col << " " << (c.member ? 1 : 0) << " "
         << (c.in_no_alloc_region ? 1 : 0) << " " << c.callee << " "
         << (c.qualifier.empty() ? "-" : c.qualifier) << "\n";
    for (const AllocSite& s : fn.alloc_sites)
      os << "A " << s.line << " " << s.col << " " << (s.guarded ? 1 : 0)
         << "\t" << s.what << "\n";
  }
  return os.str();
}

bool deserialize_analysis(const std::string& text, const std::string& display,
                          FileAnalysis& a) {
  // Hand-rolled scanner: this runs once per cache hit over ~90 files, so the
  // warm path must not pay istringstream construction per record.
  const char* p = text.data();
  const char* const end = p + text.size();
  auto line_end = [&](const char* q) {
    while (q < end && *q != '\n') ++q;
    return q;
  };
  auto parse_u32 = [](const char*& q, const char* stop,
                      std::uint32_t& v) -> bool {
    if (q >= stop || *q < '0' || *q > '9') return false;
    std::uint64_t acc = 0;
    while (q < stop && *q >= '0' && *q <= '9') acc = acc * 10 + (*q++ - '0');
    if (q < stop && *q == ' ') ++q;
    v = static_cast<std::uint32_t>(acc);
    return true;
  };
  auto parse_word = [](const char*& q, const char* stop,
                       std::string& w) -> bool {
    const char* s = q;
    while (q < stop && *q != ' ' && *q != '\t') ++q;
    if (q == s) return false;
    w.assign(s, q);
    if (q < stop && *q == ' ') ++q;
    return true;
  };

  const std::string header = std::string("wcle_lint_cache ") + kLintVersion;
  const char* eol = line_end(p);
  if (static_cast<std::size_t>(eol - p) != header.size() ||
      !std::equal(header.begin(), header.end(), p))
    return false;
  p = eol < end ? eol + 1 : end;

  a.display = display;
  FunctionInfo* fn = nullptr;
  while (p < end) {
    eol = line_end(p);
    if (eol - p < 2 || p[1] != ' ') return false;
    const char tag = p[0];
    const char* q = p + 2;
    // Fixed fields stop at the first '\t'; free text follows it.
    const char* tab = q;
    while (tab < eol && *tab != '\t') ++tab;
    auto text_field = [&]() {
      return tab < eol ? std::string(tab + 1, eol) : std::string();
    };
    bool ok = true;
    switch (tag) {
      case 'D': {
        Diagnostic d;
        d.file = display;
        ok = parse_u32(q, tab, d.line) && parse_u32(q, tab, d.col) &&
             parse_word(q, tab, d.rule);
        d.message = text_field();
        if (ok) a.raw.push_back(std::move(d));
        break;
      }
      case 'S': {
        Suppression s;
        std::uint32_t trailing = 0;
        ok = parse_u32(q, tab, s.comment_line) &&
             parse_u32(q, tab, trailing) && parse_word(q, tab, s.rule);
        s.trailing = trailing != 0;
        s.reason = text_field();
        if (ok) a.sups.push_back(std::move(s));
        break;
      }
      case 'R': {
        Region r;
        ok = parse_u32(q, tab, r.begin_line) && parse_u32(q, tab, r.end_line);
        if (ok) a.regions.push_back(r);
        break;
      }
      case 'I': {
        IncludeDirective inc;
        ok = parse_u32(q, tab, inc.line);
        inc.path = text_field();
        if (ok) a.index.includes.push_back(std::move(inc));
        break;
      }
      case 'F': {
        FunctionInfo f;
        ok = parse_u32(q, tab, f.line) && parse_word(q, tab, f.name) &&
             parse_word(q, tab, f.qualifier);
        if (f.qualifier == "-") f.qualifier.clear();
        f.display =
            f.qualifier.empty() ? f.name : f.qualifier + "::" + f.name;
        if (!ok) return false;
        a.index.functions.push_back(std::move(f));
        fn = &a.index.functions.back();
        break;
      }
      case 'C': {
        if (fn == nullptr) return false;
        CallSite c;
        std::uint32_t member = 0, inreg = 0;
        ok = parse_u32(q, tab, c.line) && parse_u32(q, tab, c.col) &&
             parse_u32(q, tab, member) && parse_u32(q, tab, inreg) &&
             parse_word(q, tab, c.callee) && parse_word(q, tab, c.qualifier);
        c.member = member != 0;
        c.in_no_alloc_region = inreg != 0;
        if (c.qualifier == "-") c.qualifier.clear();
        if (ok) fn->calls.push_back(std::move(c));
        break;
      }
      case 'A': {
        if (fn == nullptr) return false;
        AllocSite s;
        std::uint32_t guarded = 0;
        ok = parse_u32(q, tab, s.line) && parse_u32(q, tab, s.col) &&
             parse_u32(q, tab, guarded);
        s.guarded = guarded != 0;
        s.what = text_field();
        if (ok) fn->alloc_sites.push_back(std::move(s));
        break;
      }
      default:
        return false;
    }
    if (!ok) return false;
    p = eol < end ? eol + 1 : end;
  }
  a.index.path = display;
  return true;
}

// ------------------------------------------------------------------ merge

/// Combines per-file analyses into the final report: interprocedural rules,
/// the capacity-guard exemption, rule filtering, suppression matching, and
/// stale-suppression detection. Deterministic given the analysis order.
void merge(std::vector<FileAnalysis>& analyses, const LintOptions& options,
           LintReport& report) {
  report.files_scanned += analyses.size();

  std::vector<std::vector<bool>> used(analyses.size());
  for (std::size_t i = 0; i < analyses.size(); ++i)
    used[i].assign(analyses[i].sups.size(), false);

  // Guarded allocation positions, per file, before the indexes move out.
  std::vector<std::vector<std::uint64_t>> guarded_pos(analyses.size());
  for (std::size_t i = 0; i < analyses.size(); ++i)
    for (const FunctionInfo& fn : analyses[i].index.functions)
      for (const AllocSite& s : fn.alloc_sites)
        if (s.guarded)
          guarded_pos[i].push_back(
              (static_cast<std::uint64_t>(s.line) << 32) | s.col);

  std::vector<Diagnostic> all;

  // Layering: config diagnostics plus per-file include checks.
  if (!options.layers_file.empty() && rule_enabled(options, "layering")) {
    std::ifstream in(options.layers_file, std::ios::binary);
    if (!in) {
      report.errors.push_back("cannot read layers file '" +
                              options.layers_file + "'");
    } else {
      std::ostringstream buf;
      buf << in.rdbuf();
      LayerConfig cfg = parse_layer_config(options.layers_file, buf.str());
      for (Diagnostic& d : cfg.errors) all.push_back(std::move(d));
      for (const FileAnalysis& a : analyses)
        check_layering(a.display, a.index.includes, cfg, all);
    }
  }

  // Transitive no-alloc over the merged call graph. A hand-written
  // `no-alloc-ok` covering an allocation site silences its summary evidence
  // and counts as used — the audit note stands in for the analysis.
  if (rule_enabled(options, "no-alloc-transitive")) {
    std::vector<FileIndex> indexes;
    indexes.reserve(analyses.size());
    for (FileAnalysis& a : analyses) indexes.push_back(std::move(a.index));
    CallGraph graph(indexes, [&](std::size_t f, const AllocSite& site) {
      for (std::size_t j = 0; j < analyses[f].sups.size(); ++j) {
        const Suppression& s = analyses[f].sups[j];
        if ((s.rule == "no-alloc" || s.rule == "no-alloc-transitive") &&
            s.covers(site.line)) {
          used[f][j] = true;
          return true;
        }
      }
      return false;
    });
    graph.report_region_escapes(all);
  }

  // Lexical findings, minus no-alloc findings at capacity-guarded sites
  // (those are machine-checked cold growth, not findings).
  for (std::size_t i = 0; i < analyses.size(); ++i) {
    for (Diagnostic& d : analyses[i].raw) {
      if (d.rule == "no-alloc") {
        const std::uint64_t pos =
            (static_cast<std::uint64_t>(d.line) << 32) | d.col;
        if (std::find(guarded_pos[i].begin(), guarded_pos[i].end(), pos) !=
            guarded_pos[i].end())
          continue;
      }
      all.push_back(d);
    }
  }

  // Rule filter + suppression matching.
  std::unordered_map<std::string, std::size_t> file_of;
  for (std::size_t i = 0; i < analyses.size(); ++i)
    file_of[analyses[i].display] = i;

  for (Diagnostic& d : all) {
    if (!rule_enabled(options, d.rule)) continue;
    const Suppression* hit = nullptr;
    auto at = file_of.find(d.file);
    if (at != file_of.end()) {
      FileAnalysis& a = analyses[at->second];
      for (std::size_t j = 0; j < a.sups.size(); ++j)
        if (a.sups[j].rule == d.rule && a.sups[j].covers(d.line)) {
          hit = &a.sups[j];
          used[at->second][j] = true;
          break;
        }
    }
    if (hit != nullptr)
      report.suppressed.push_back({d.file, d.line, d.rule, hit->reason});
    else
      report.diagnostics.push_back(std::move(d));
  }

  // Stale suppressions: the rule is enabled, yet nothing was silenced.
  if (rule_enabled(options, "directive")) {
    for (std::size_t i = 0; i < analyses.size(); ++i)
      for (std::size_t j = 0; j < analyses[i].sups.size(); ++j) {
        const Suppression& s = analyses[i].sups[j];
        if (used[i][j] || !rule_enabled(options, s.rule)) continue;
        // Without a layer config the layering rule never runs, so its
        // suppressions cannot prove themselves useful — not staleness.
        if (s.rule == "layering" && options.layers_file.empty()) continue;
        // On a partial file set the call graph is incomplete: a transitive
        // suppression can only be judged stale by a whole-tree run.
        if (s.rule == "no-alloc-transitive" && options.partial) continue;
        report.diagnostics.push_back(
            {analyses[i].display, s.comment_line, 1, "directive",
             "stale suppression: '" + s.rule +
                 "-ok' silences nothing here — the finding it covered is "
                 "gone, so delete the annotation (or re-justify it against "
                 "a real finding)"});
      }
  }

  auto diag_less = [](const Diagnostic& x, const Diagnostic& y) {
    if (x.file != y.file) return x.file < y.file;
    if (x.line != y.line) return x.line < y.line;
    if (x.col != y.col) return x.col < y.col;
    return x.rule < y.rule;
  };
  std::sort(report.diagnostics.begin(), report.diagnostics.end(), diag_less);
  std::sort(report.suppressed.begin(), report.suppressed.end(),
            [](const SuppressedDiagnostic& x, const SuppressedDiagnostic& y) {
              if (x.file != y.file) return x.file < y.file;
              if (x.line != y.line) return x.line < y.line;
              return x.rule < y.rule;
            });
}

bool lintable_extension(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".hpp" ||
         ext == ".h";
}

}  // namespace

LintReport lint_sources(
    const std::vector<std::pair<std::string, std::string>>& sources,
    const LintOptions& options) {
  LintReport report;
  std::vector<FileAnalysis> analyses;
  analyses.reserve(sources.size());
  for (const auto& s : sources)
    analyses.push_back(analyze_source(s.first, s.second));
  merge(analyses, options, report);
  return report;
}

LintReport lint_source(const std::string& display_path,
                       const std::string& source, const LintOptions& options) {
  return lint_sources({{display_path, source}}, options);
}

LintReport lint_paths(const std::vector<std::string>& paths,
                      const LintOptions& options) {
  namespace fs = std::filesystem;
  LintReport report;

  // Collect the worklist first, sorted, so reports are stable regardless of
  // directory-entry order or thread scheduling.
  std::vector<std::string> files;
  for (const std::string& p : paths) {
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (auto it = fs::recursive_directory_iterator(p, ec);
           !ec && it != fs::recursive_directory_iterator(); ++it)
        if (it->is_regular_file() && lintable_extension(it->path()))
          files.push_back(it->path().generic_string());
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(p);
    } else {
      report.errors.push_back("cannot read '" + p +
                              "': no such file or directory");
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  const bool use_cache = !options.cache_dir.empty();
  if (use_cache) {
    std::error_code ec;
    fs::create_directories(options.cache_dir, ec);
    if (ec)
      report.errors.push_back("cannot create cache directory '" +
                              options.cache_dir + "'");
  }

  std::vector<FileAnalysis> analyses(files.size());
  std::vector<char> ok(files.size(), 0);
  std::vector<char> from_cache(files.size(), 0);
  std::vector<std::string> io_errors(files.size());

  auto work = [&](std::size_t i) {
    std::ifstream in(files[i], std::ios::binary);
    if (!in) {
      io_errors[i] = "cannot open file '" + files[i] + "'";
      return;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string source = buf.str();

    std::string entry_path;
    if (use_cache) {
      entry_path = options.cache_dir + "/" + cache_key(files[i], source);
      std::ifstream centry(entry_path, std::ios::binary);
      if (centry) {
        std::ostringstream cbuf;
        cbuf << centry.rdbuf();
        FileAnalysis cached;
        if (deserialize_analysis(cbuf.str(), files[i], cached)) {
          analyses[i] = std::move(cached);
          ok[i] = 1;
          from_cache[i] = 1;
          return;
        }
      }
    }
    analyses[i] = analyze_source(files[i], source);
    ok[i] = 1;
    if (use_cache && !entry_path.empty()) {
      std::ofstream centry(entry_path, std::ios::binary | std::ios::trunc);
      if (centry) centry << serialize_analysis(analyses[i]);
    }
  };

  unsigned jobs = options.jobs != 0 ? options.jobs
                                    : std::thread::hardware_concurrency();
  if (jobs == 0) jobs = 1;
  if (files.size() < jobs) jobs = static_cast<unsigned>(files.size());
  if (jobs <= 1) {
    for (std::size_t i = 0; i < files.size(); ++i) work(i);
  } else {
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (unsigned t = 0; t < jobs; ++t)
      pool.emplace_back([&] {
        for (std::size_t i = next.fetch_add(1); i < files.size();
             i = next.fetch_add(1))
          work(i);
      });
    for (std::thread& t : pool) t.join();
  }

  std::vector<FileAnalysis> good;
  good.reserve(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (ok[i]) {
      if (from_cache[i]) ++report.cache_hits;
      good.push_back(std::move(analyses[i]));
    } else {
      report.errors.push_back(io_errors[i]);
    }
  }
  merge(good, options, report);
  return report;
}

std::string to_text(const LintReport& report) {
  std::ostringstream os;
  for (const std::string& e : report.errors) os << "error: " << e << "\n";
  for (const Diagnostic& d : report.diagnostics)
    os << d.file << ":" << d.line << ":" << d.col << ": [" << d.rule << "] "
       << d.message << "\n";
  os << report.diagnostics.size() << " diagnostic(s), "
     << report.suppressed.size() << " suppressed, " << report.files_scanned
     << " file(s) scanned\n";
  return os.str();
}

std::string to_json(const LintReport& report,
                    const std::vector<std::string>& roots) {
  std::ostringstream os;
  os << "{\"tool\":\"wcle_lint\",\"version\":2,\"roots\":[";
  for (std::size_t i = 0; i < roots.size(); ++i) {
    if (i > 0) os << ",";
    json_escape(os, roots[i]);
  }
  os << "],\"files_scanned\":" << report.files_scanned << ",\"errors\":[";
  for (std::size_t i = 0; i < report.errors.size(); ++i) {
    if (i > 0) os << ",";
    json_escape(os, report.errors[i]);
  }
  os << "],\"diagnostics\":[";
  for (std::size_t i = 0; i < report.diagnostics.size(); ++i) {
    const Diagnostic& d = report.diagnostics[i];
    if (i > 0) os << ",";
    os << "{\"file\":";
    json_escape(os, d.file);
    os << ",\"line\":" << d.line << ",\"col\":" << d.col << ",\"rule\":";
    json_escape(os, d.rule);
    os << ",\"message\":";
    json_escape(os, d.message);
    os << "}";
  }
  os << "],\"suppressed\":[";
  for (std::size_t i = 0; i < report.suppressed.size(); ++i) {
    const SuppressedDiagnostic& s = report.suppressed[i];
    if (i > 0) os << ",";
    os << "{\"file\":";
    json_escape(os, s.file);
    os << ",\"line\":" << s.line << ",\"rule\":";
    json_escape(os, s.rule);
    os << ",\"reason\":";
    json_escape(os, s.reason);
    os << "}";
  }
  os << "]}";
  return os.str();
}

void json_escape(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace wcle_lint
