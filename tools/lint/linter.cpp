#include "lint/linter.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace wcle_lint {

namespace {

constexpr const char* kDirectivePrefix = "wcle-lint:";

struct Suppression {
  std::uint32_t comment_line = 0;
  std::string rule;
  std::string reason;
  bool trailing = false;  ///< trailing comments bind to their own line only

  bool covers(std::uint32_t line) const {
    if (line == comment_line) return true;
    return !trailing && line == comment_line + 1;
  }
};

struct Directives {
  std::vector<Suppression> suppressions;
  std::vector<Region> regions;
  std::vector<Diagnostic> errors;  ///< rule "directive"
};

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  std::size_t e = s.find_last_not_of(" \t");
  return b == std::string::npos ? "" : s.substr(b, e - b + 1);
}

/// Parses every wcle-lint directive out of a file's comments.
Directives parse_directives(const std::string& path,
                            const std::vector<Comment>& comments) {
  Directives out;
  std::uint32_t open_begin = 0;  // line of the currently open begin marker

  for (const Comment& c : comments) {
    std::size_t pos = c.text.find(kDirectivePrefix);
    if (pos == std::string::npos) continue;
    const std::string body =
        trim(c.text.substr(pos + std::string(kDirectivePrefix).size()));

    if (body == "begin-no-alloc") {
      if (open_begin != 0) {
        out.errors.push_back({path, c.line, 1, "directive",
                              "begin-no-alloc while the region opened on "
                              "line " +
                                  std::to_string(open_begin) +
                                  " is still open (regions do not nest)"});
      } else {
        open_begin = c.line;
      }
      continue;
    }
    if (body == "end-no-alloc") {
      if (open_begin == 0) {
        out.errors.push_back({path, c.line, 1, "directive",
                              "end-no-alloc without a matching "
                              "begin-no-alloc"});
      } else {
        out.regions.push_back({open_begin, c.line});
        open_begin = 0;
      }
      continue;
    }

    // <rule>-ok(reason)
    const std::size_t ok = body.find("-ok(");
    const std::size_t close = body.rfind(')');
    if (ok != std::string::npos && close != std::string::npos &&
        close > ok + 3) {
      const std::string rule = body.substr(0, ok);
      const std::string reason = trim(body.substr(ok + 4, close - ok - 4));
      const auto& names = rule_names();
      if (std::find(names.begin(), names.end(), rule) == names.end()) {
        out.errors.push_back({path, c.line, 1, "directive",
                              "suppression names unknown rule '" + rule +
                                  "' (see wcle_lint --list-rules)"});
      } else if (reason.empty()) {
        out.errors.push_back({path, c.line, 1, "directive",
                              "suppression of '" + rule +
                                  "' has an empty reason: every suppression "
                                  "must carry a written justification"});
      } else {
        out.suppressions.push_back({c.line, rule, reason, c.trailing});
      }
      continue;
    }

    out.errors.push_back(
        {path, c.line, 1, "directive",
         "unrecognized wcle-lint directive '" + body +
             "': expected begin-no-alloc, end-no-alloc, or <rule>-ok(reason)"});
  }

  if (open_begin != 0)
    out.errors.push_back({path, open_begin, 1, "directive",
                          "begin-no-alloc region never closed (missing "
                          "end-no-alloc before end of file)"});
  return out;
}

bool rule_enabled(const LintOptions& options, const std::string& rule) {
  if (options.rules.empty()) return true;
  return std::find(options.rules.begin(), options.rules.end(), rule) !=
         options.rules.end();
}

void lint_buffer(const std::string& display_path, const std::string& source,
                 const LintOptions& options, LintReport& report) {
  const LexResult lx = lex(source);
  Directives dirs = parse_directives(display_path, lx.comments);

  std::vector<Diagnostic> raw;
  run_rules(display_path, lx, dirs.regions, raw);
  for (Diagnostic& d : dirs.errors)
    if (rule_enabled(options, d.rule)) raw.push_back(std::move(d));

  // Stable order: by line, then column, then rule.
  std::sort(raw.begin(), raw.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.line != b.line) return a.line < b.line;
              if (a.col != b.col) return a.col < b.col;
              return a.rule < b.rule;
            });

  for (Diagnostic& d : raw) {
    if (!rule_enabled(options, d.rule)) continue;
    const Suppression* hit = nullptr;
    for (const Suppression& s : dirs.suppressions)
      if (s.rule == d.rule && s.covers(d.line)) {
        hit = &s;
        break;
      }
    if (hit != nullptr)
      report.suppressed.push_back({d.file, d.line, d.rule, hit->reason});
    else
      report.diagnostics.push_back(std::move(d));
  }
  report.files_scanned += 1;
}

bool lintable_extension(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".hpp" ||
         ext == ".h";
}

void json_escape(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

LintReport lint_source(const std::string& display_path,
                       const std::string& source, const LintOptions& options) {
  LintReport report;
  lint_buffer(display_path, source, options, report);
  return report;
}

LintReport lint_paths(const std::vector<std::string>& paths,
                      const LintOptions& options) {
  namespace fs = std::filesystem;
  LintReport report;

  // Collect the worklist first, sorted, so reports are stable regardless of
  // directory-entry order.
  std::vector<std::string> files;
  for (const std::string& p : paths) {
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (auto it = fs::recursive_directory_iterator(p, ec);
           !ec && it != fs::recursive_directory_iterator(); ++it)
        if (it->is_regular_file() && lintable_extension(it->path()))
          files.push_back(it->path().generic_string());
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(p);
    } else {
      report.diagnostics.push_back(
          {p, 0, 0, "directive", "path does not exist or is unreadable"});
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  for (const std::string& f : files) {
    std::ifstream in(f, std::ios::binary);
    if (!in) {
      report.diagnostics.push_back({f, 0, 0, "directive", "cannot open file"});
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    lint_buffer(f, buf.str(), options, report);
  }
  return report;
}

std::string to_text(const LintReport& report) {
  std::ostringstream os;
  for (const Diagnostic& d : report.diagnostics)
    os << d.file << ":" << d.line << ":" << d.col << ": [" << d.rule << "] "
       << d.message << "\n";
  os << report.diagnostics.size() << " diagnostic(s), "
     << report.suppressed.size() << " suppressed, " << report.files_scanned
     << " file(s) scanned\n";
  return os.str();
}

std::string to_json(const LintReport& report,
                    const std::vector<std::string>& roots) {
  std::ostringstream os;
  os << "{\"tool\":\"wcle_lint\",\"version\":1,\"roots\":[";
  for (std::size_t i = 0; i < roots.size(); ++i) {
    if (i > 0) os << ",";
    json_escape(os, roots[i]);
  }
  os << "],\"files_scanned\":" << report.files_scanned << ",\"diagnostics\":[";
  for (std::size_t i = 0; i < report.diagnostics.size(); ++i) {
    const Diagnostic& d = report.diagnostics[i];
    if (i > 0) os << ",";
    os << "{\"file\":";
    json_escape(os, d.file);
    os << ",\"line\":" << d.line << ",\"col\":" << d.col << ",\"rule\":";
    json_escape(os, d.rule);
    os << ",\"message\":";
    json_escape(os, d.message);
    os << "}";
  }
  os << "],\"suppressed\":[";
  for (std::size_t i = 0; i < report.suppressed.size(); ++i) {
    const SuppressedDiagnostic& s = report.suppressed[i];
    if (i > 0) os << ",";
    os << "{\"file\":";
    json_escape(os, s.file);
    os << ",\"line\":" << s.line << ",\"rule\":";
    json_escape(os, s.rule);
    os << ",\"reason\":";
    json_escape(os, s.reason);
    os << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace wcle_lint
