// Declaration scanner for wcle_lint's interprocedural rules.
//
// build_index walks the token stream of one translation unit and recovers a
// best-effort function index: every function *definition* (free function or
// out-of-line/inline method), the call sites inside its body, and the
// allocation evidence its body carries. No name lookup, no types — the
// callgraph layer (callgraph.hpp) resolves calls across the whole tree by
// name, which is sound enough for a single-project namespace and is pinned
// by the fixture corpus.
//
// Allocation evidence is classified at the site:
//   - plain     an unconditional allocation (operator new, make_*, growth
//               member call, allocating std:: type mention);
//   - guarded   the site is control-dependent on a pool-capacity query
//               (`.size()`, `.capacity()`, `.empty()` in a dominating `if`
//               condition, including the early-return form) — the
//               machine-checked shape of "allocates only when the warm pool
//               is exhausted", which needs no hand-written suppression.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lint/lexer.hpp"
#include "lint/rules.hpp"

namespace wcle_lint {

/// One allocation-evidence site inside a function body.
struct AllocSite {
  std::uint32_t line = 0;
  std::uint32_t col = 0;
  std::string what;      ///< e.g. "operator new", ".push_back()", "std::map"
  bool guarded = false;  ///< capacity-guarded cold growth (see file header)
};

/// One call site inside a function body.
struct CallSite {
  std::string callee;     ///< bare name ("alloc")
  std::string qualifier;  ///< "IdArena" for IdArena::alloc, "std", or ""
  bool member = false;    ///< receiver call: obj.f(...) / obj->f(...)
  std::uint32_t line = 0;
  std::uint32_t col = 0;
  bool in_no_alloc_region = false;  ///< the call site lies inside a region
};

struct FunctionInfo {
  std::string name;       ///< bare name ("step")
  std::string qualifier;  ///< enclosing qualifier as written ("Network")
  std::string display;    ///< "Network::step" or "step"
  std::uint32_t line = 0;
  std::vector<CallSite> calls;
  std::vector<AllocSite> alloc_sites;
};

/// The per-TU index consumed by the callgraph and layering passes.
struct FileIndex {
  std::string path;
  std::vector<FunctionInfo> functions;
  std::vector<IncludeDirective> includes;
};

/// Scans `lx` for function definitions and their bodies. `regions` are the
/// file's no-alloc regions (used to mark call sites that lie inside one).
FileIndex build_index(const std::string& path, const LexResult& lx,
                      const std::vector<Region>& regions);

}  // namespace wcle_lint
