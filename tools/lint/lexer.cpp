#include "lint/lexer.hpp"

#include <cctype>

namespace wcle_lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool ident_cont(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Raw-string introducers: the encoding prefixes the standard allows.
bool raw_string_prefix(const std::string& id) {
  return id == "R" || id == "u8R" || id == "uR" || id == "LR" || id == "UR";
}

}  // namespace

LexResult lex(const std::string& source) {
  LexResult out;
  const std::size_t n = source.size();
  std::size_t i = 0;
  std::uint32_t line = 1, col = 1;
  bool in_pp = false;          // inside a preprocessor directive line
  bool line_has_code = false;  // non-comment token emitted on this line

  auto advance = [&](std::size_t k) {
    for (std::size_t j = 0; j < k && i < n; ++j, ++i) {
      if (source[i] == '\n') {
        ++line;
        col = 1;
        line_has_code = false;
        // A preprocessor line ends at an unescaped newline.
        if (in_pp && (i == 0 || source[i - 1] != '\\')) in_pp = false;
      } else {
        ++col;
      }
    }
  };

  auto push = [&](TokKind kind, std::string text, std::uint32_t tl,
                  std::uint32_t tc) {
    out.tokens.push_back({kind, std::move(text), tl, tc, in_pp});
    line_has_code = true;
  };

  while (i < n) {
    const char c = source[i];
    const char c1 = i + 1 < n ? source[i + 1] : '\0';

    if (c == '\n' || c == ' ' || c == '\t' || c == '\r' || c == '\v' ||
        c == '\f') {
      advance(1);
      continue;
    }

    // Line comment.
    if (c == '/' && c1 == '/') {
      Comment cm;
      cm.line = line;
      cm.trailing = line_has_code;
      advance(2);
      std::size_t start = i;
      while (i < n && source[i] != '\n') advance(1);
      cm.text = source.substr(start, i - start);
      out.comments.push_back(std::move(cm));
      continue;
    }

    // Block comment.
    if (c == '/' && c1 == '*') {
      Comment cm;
      cm.line = line;
      cm.trailing = line_has_code;
      cm.block = true;
      advance(2);
      std::size_t start = i;
      while (i + 1 < n && !(source[i] == '*' && source[i + 1] == '/'))
        advance(1);
      cm.text = source.substr(start, (i < n ? i : n) - start);
      advance(i + 1 < n ? 2 : n - i);  // consume "*/" or the dangling tail
      out.comments.push_back(std::move(cm));
      continue;
    }

    // Preprocessor directive: '#' as the first code on a line.
    if (c == '#' && !line_has_code) {
      in_pp = true;
      push(TokKind::kPunct, "#", line, col);
      advance(1);
      continue;
    }

    // String literal. The contents never reach the token stream, but a
    // quoted `#include "..."` path is captured for the layering rule.
    if (c == '"') {
      const std::size_t k = out.tokens.size();
      const bool is_include =
          k >= 2 && in_pp && out.tokens[k - 1].kind == TokKind::kIdent &&
          out.tokens[k - 1].text == "include" &&
          out.tokens[k - 2].kind == TokKind::kPunct &&
          out.tokens[k - 2].text == "#" && out.tokens[k - 1].line == line;
      const std::uint32_t tl = line;
      push(TokKind::kString, "", line, col);
      advance(1);
      const std::size_t body = i;
      while (i < n && source[i] != '"') {
        if (source[i] == '\\' && i + 1 < n)
          advance(2);
        else if (source[i] == '\n')
          break;  // unterminated; do not swallow the rest of the file
        else
          advance(1);
      }
      if (is_include)
        out.includes.push_back({source.substr(body, i - body), tl});
      if (i < n && source[i] == '"') advance(1);
      continue;
    }

    // Character literal (only when it cannot be a digit separator, which the
    // number branch below consumes first).
    if (c == '\'') {
      push(TokKind::kChar, "", line, col);
      advance(1);
      while (i < n && source[i] != '\'') {
        if (source[i] == '\\' && i + 1 < n)
          advance(2);
        else if (source[i] == '\n')
          break;
        else
          advance(1);
      }
      if (i < n && source[i] == '\'') advance(1);
      continue;
    }

    // Number (pp-number: digits, letters, dots, digit separators, exponent
    // signs). Starts with a digit or '.' followed by a digit.
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(c1)))) {
      const std::uint32_t tl = line, tc = col;
      std::string text;
      while (i < n) {
        const char d = source[i];
        if (ident_cont(d) || d == '.' || d == '\'') {
          text += d;
          advance(1);
          // Exponent: e+ e- p+ p- keep the sign inside the number.
          if ((d == 'e' || d == 'E' || d == 'p' || d == 'P') && i < n &&
              (source[i] == '+' || source[i] == '-') && !text.empty() &&
              std::isdigit(static_cast<unsigned char>(text[0]))) {
            text += source[i];
            advance(1);
          }
        } else {
          break;
        }
      }
      push(TokKind::kNumber, std::move(text), tl, tc);
      continue;
    }

    // Identifier / keyword — and the raw-string special case.
    if (ident_start(c)) {
      const std::uint32_t tl = line, tc = col;
      std::string text;
      while (i < n && ident_cont(source[i])) {
        text += source[i];
        advance(1);
      }
      if (i < n && source[i] == '"' && raw_string_prefix(text)) {
        // R"delim( ... )delim"
        advance(1);  // opening quote
        std::string delim;
        while (i < n && source[i] != '(' && source[i] != '\n') {
          delim += source[i];
          advance(1);
        }
        if (i < n && source[i] == '(') advance(1);
        const std::string closer = ")" + delim + "\"";
        const std::size_t end = source.find(closer, i);
        advance((end == std::string::npos ? n : end + closer.size()) - i);
        push(TokKind::kString, "", tl, tc);
        continue;
      }
      push(TokKind::kIdent, std::move(text), tl, tc);
      continue;
    }

    // Punctuation. "::" and "->" matter to the rules; everything else is
    // emitted one character at a time (so template depth counting sees each
    // '<' and '>' of a ">>" close individually).
    if (c == ':' && c1 == ':') {
      push(TokKind::kPunct, "::", line, col);
      advance(2);
      continue;
    }
    if (c == '-' && c1 == '>') {
      push(TokKind::kPunct, "->", line, col);
      advance(2);
      continue;
    }
    push(TokKind::kPunct, std::string(1, c), line, col);
    advance(1);
  }

  return out;
}

}  // namespace wcle_lint
