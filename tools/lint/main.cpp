// wcle_lint CLI.
//
//   wcle_lint --root=src [--root=DIR]... [FILE...]
//             [--format=text|json|sarif] [--out=FILE] [--sarif=FILE]
//             [--rule=NAME]... [--cache[=DIR]] [--jobs=N]
//             [--changed[=BASE]] [--layers=FILE] [--list-rules]
//
// Exit codes: 0 = clean, 1 = diagnostics found, 2 = usage or I/O error
// (including a --root that does not exist: a missing tree is never a clean
// pass).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "lint/linter.hpp"
#include "lint/sarif.hpp"

namespace {

void usage(std::ostream& os) {
  os << "usage: wcle_lint [--root=DIR]... [FILE...] [options]\n"
        "\n"
        "Static determinism & hot-path checks for the WCLE tree.\n"
        "\n"
        "options:\n"
        "  --root=DIR       lint every .cpp/.cc/.hpp/.h under DIR "
        "(repeatable)\n"
        "  --changed[=BASE] lint only files modified vs. git BASE "
        "(default HEAD);\n"
        "                   any --root flags become scope filters\n"
        "  --format=FMT     text (default), json, or sarif\n"
        "  --out=FILE       write the report to FILE instead of stdout\n"
        "  --sarif=FILE     additionally write a SARIF 2.1.0 log to FILE\n"
        "  --rule=NAME      restrict to a rule (repeatable; default: all)\n"
        "  --cache[=DIR]    per-file result cache "
        "(default build/.wcle_lint_cache)\n"
        "  --jobs=N         worker threads (default: hardware "
        "concurrency)\n"
        "  --layers=FILE    layering DAG config "
        "(default tools/lint/layers.txt if present)\n"
        "  --list-rules     print every rule with its description and exit\n"
        "\n"
        "Suppressions: // wcle-lint: <rule>-ok(reason)   (same or next "
        "line)\n"
        "No-alloc regions: // wcle-lint: begin-no-alloc .. end-no-alloc\n";
}

/// `git diff --name-only <base> --` filtered to lintable extensions.
/// Returns false (with a message on stderr) when git itself fails.
bool changed_files(const std::string& base, std::vector<std::string>& out) {
  const std::string cmd = "git diff --name-only " + base + " -- 2>/dev/null";
  std::FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) {
    std::cerr << "wcle_lint: cannot run git for --changed\n";
    return false;
  }
  char buf[4096];
  std::string acc;
  while (std::fgets(buf, sizeof buf, pipe) != nullptr) acc += buf;
  const int status = pclose(pipe);
  if (status != 0) {
    std::cerr << "wcle_lint: 'git diff --name-only " << base
              << "' failed (not a git checkout, or bad base?)\n";
    return false;
  }
  std::size_t pos = 0;
  while (pos < acc.size()) {
    std::size_t nl = acc.find('\n', pos);
    if (nl == std::string::npos) nl = acc.size();
    const std::string line = acc.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;
    const std::size_t dot = line.rfind('.');
    if (dot == std::string::npos) continue;
    const std::string ext = line.substr(dot);
    if (ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".hpp" ||
        ext == ".h") {
      // Deleted files show up in the diff; lint only what still exists.
      std::ifstream probe(line);
      if (probe) out.push_back(line);
    }
  }
  return true;
}

bool file_exists(const std::string& p) {
  std::ifstream f(p);
  return static_cast<bool>(f);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  std::vector<std::string> roots;
  wcle_lint::LintOptions options;
  std::string format = "text";
  std::string out_path;
  std::string sarif_path;
  bool changed = false;
  std::string changed_base = "HEAD";
  bool layers_explicit = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> std::string {
      return arg.substr(std::strlen(prefix));
    };
    if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    } else if (arg == "--list-rules") {
      for (const std::string& r : wcle_lint::rule_names())
        std::cout << r << "\n    " << wcle_lint::rule_description(r) << "\n";
      return 0;
    } else if (arg.rfind("--root=", 0) == 0) {
      roots.push_back(value("--root="));
    } else if (arg == "--root" && i + 1 < argc) {
      roots.push_back(argv[++i]);
    } else if (arg == "--changed") {
      changed = true;
    } else if (arg.rfind("--changed=", 0) == 0) {
      changed = true;
      changed_base = value("--changed=");
    } else if (arg.rfind("--format=", 0) == 0) {
      format = value("--format=");
      if (format != "text" && format != "json" && format != "sarif") {
        std::cerr << "wcle_lint: unknown format '" << format << "'\n";
        return 2;
      }
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = value("--out=");
    } else if (arg.rfind("--sarif=", 0) == 0) {
      sarif_path = value("--sarif=");
    } else if (arg == "--cache") {
      options.cache_dir = "build/.wcle_lint_cache";
    } else if (arg.rfind("--cache=", 0) == 0) {
      options.cache_dir = value("--cache=");
    } else if (arg.rfind("--jobs=", 0) == 0) {
      options.jobs =
          static_cast<unsigned>(std::strtoul(value("--jobs=").c_str(),
                                             nullptr, 10));
    } else if (arg.rfind("--layers=", 0) == 0) {
      options.layers_file = value("--layers=");
      layers_explicit = true;
    } else if (arg.rfind("--rule=", 0) == 0) {
      const std::string rule = value("--rule=");
      const auto& names = wcle_lint::rule_names();
      bool known = false;
      for (const std::string& r : names) known = known || r == rule;
      if (!known) {
        std::cerr << "wcle_lint: unknown rule '" << rule
                  << "' (see --list-rules)\n";
        return 2;
      }
      options.rules.push_back(rule);
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "wcle_lint: unknown option '" << arg << "'\n";
      usage(std::cerr);
      return 2;
    } else {
      paths.push_back(arg);
    }
  }

  if (changed) {
    // In --changed mode the roots scope the diff instead of being walked:
    // `--changed --root=src` lints only the changed files under src/.
    std::vector<std::string> diff;
    if (!changed_files(changed_base, diff)) return 2;
    options.partial = true;
    for (const std::string& file : diff) {
      bool in_scope = roots.empty();
      for (const std::string& root : roots) {
        const std::string prefix =
            root.back() == '/' ? root : root + "/";
        if (file.rfind(prefix, 0) == 0 || file == root) in_scope = true;
      }
      if (in_scope) paths.push_back(file);
    }
    if (paths.empty()) {
      std::cout << "wcle_lint: no lintable files changed vs. " << changed_base
                << "\n";
      return 0;
    }
  } else {
    paths.insert(paths.end(), roots.begin(), roots.end());
  }
  if (paths.empty()) {
    std::cerr << "wcle_lint: no --root or files given\n";
    usage(std::cerr);
    return 2;
  }
  if (!layers_explicit && file_exists("tools/lint/layers.txt"))
    options.layers_file = "tools/lint/layers.txt";
  if (layers_explicit && options.layers_file.empty())
    options.layers_file.clear();  // --layers= disables the rule

  const auto t0 = std::chrono::steady_clock::now();
  const wcle_lint::LintReport report = wcle_lint::lint_paths(paths, options);
  const auto t1 = std::chrono::steady_clock::now();
  if (!options.cache_dir.empty()) {
    const auto ms =
        std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
            .count() /
        1000.0;
    std::fprintf(stderr,
                 "wcle_lint: %llu file(s), %llu cache hit(s), %.1f ms\n",
                 static_cast<unsigned long long>(report.files_scanned),
                 static_cast<unsigned long long>(report.cache_hits), ms);
  }

  for (const std::string& e : report.errors)
    std::cerr << "wcle_lint: error: " << e << "\n";

  const std::string rendered =
      format == "json"    ? wcle_lint::to_json(report, paths)
      : format == "sarif" ? wcle_lint::to_sarif(report, paths)
                          : wcle_lint::to_text(report);
  if (out_path.empty()) {
    std::cout << rendered;
    if (format != "text") std::cout << "\n";
  } else {
    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
      std::cerr << "wcle_lint: cannot write " << out_path << "\n";
      return 2;
    }
    out << rendered;
    if (format != "text") out << "\n";
  }
  if (!sarif_path.empty()) {
    std::ofstream sf(sarif_path, std::ios::binary);
    if (!sf) {
      std::cerr << "wcle_lint: cannot write " << sarif_path << "\n";
      return 2;
    }
    sf << wcle_lint::to_sarif(report, paths) << "\n";
  }
  if (!report.errors.empty()) return 2;
  return report.clean() ? 0 : 1;
}
