// wcle_lint CLI.
//
//   wcle_lint --root=src [--root=DIR]... [FILE...]
//             [--format=text|json] [--out=FILE] [--rule=NAME]...
//             [--list-rules]
//
// Exit codes: 0 = clean, 1 = diagnostics found, 2 = usage or I/O error.
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "lint/linter.hpp"

namespace {

void usage(std::ostream& os) {
  os << "usage: wcle_lint [--root=DIR]... [FILE...] [options]\n"
        "\n"
        "Static determinism & hot-path checks for the WCLE tree.\n"
        "\n"
        "options:\n"
        "  --root=DIR       lint every .cpp/.cc/.hpp/.h under DIR "
        "(repeatable)\n"
        "  --format=FMT     text (default) or json\n"
        "  --out=FILE       write the report to FILE instead of stdout\n"
        "  --rule=NAME      restrict to a rule (repeatable; default: all)\n"
        "  --list-rules     print every rule with its description and exit\n"
        "\n"
        "Suppressions: // wcle-lint: <rule>-ok(reason)   (same or next "
        "line)\n"
        "No-alloc regions: // wcle-lint: begin-no-alloc .. end-no-alloc\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  wcle_lint::LintOptions options;
  std::string format = "text";
  std::string out_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> std::string {
      return arg.substr(std::strlen(prefix));
    };
    if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    } else if (arg == "--list-rules") {
      for (const std::string& r : wcle_lint::rule_names())
        std::cout << r << "\n    " << wcle_lint::rule_description(r) << "\n";
      return 0;
    } else if (arg.rfind("--root=", 0) == 0) {
      paths.push_back(value("--root="));
    } else if (arg == "--root" && i + 1 < argc) {
      paths.push_back(argv[++i]);
    } else if (arg.rfind("--format=", 0) == 0) {
      format = value("--format=");
      if (format != "text" && format != "json") {
        std::cerr << "wcle_lint: unknown format '" << format << "'\n";
        return 2;
      }
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = value("--out=");
    } else if (arg.rfind("--rule=", 0) == 0) {
      const std::string rule = value("--rule=");
      const auto& names = wcle_lint::rule_names();
      bool known = false;
      for (const std::string& r : names) known = known || r == rule;
      if (!known) {
        std::cerr << "wcle_lint: unknown rule '" << rule
                  << "' (see --list-rules)\n";
        return 2;
      }
      options.rules.push_back(rule);
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "wcle_lint: unknown option '" << arg << "'\n";
      usage(std::cerr);
      return 2;
    } else {
      paths.push_back(arg);
    }
  }

  if (paths.empty()) {
    std::cerr << "wcle_lint: no --root or files given\n";
    usage(std::cerr);
    return 2;
  }

  const wcle_lint::LintReport report = wcle_lint::lint_paths(paths, options);
  const std::string rendered = format == "json"
                                   ? wcle_lint::to_json(report, paths)
                                   : wcle_lint::to_text(report);
  if (out_path.empty()) {
    std::cout << rendered;
    if (format == "json") std::cout << "\n";
  } else {
    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
      std::cerr << "wcle_lint: cannot write " << out_path << "\n";
      return 2;
    }
    out << rendered;
    if (format == "json") out << "\n";
  }
  return report.clean() ? 0 : 1;
}
