// Comment- and string-aware C++ tokenizer for wcle_lint.
//
// This is deliberately not a C++ parser: the lint rules (see rules.hpp) are
// lexical patterns over a token stream, which is enough to recognize banned
// identifiers, template-argument shapes, and annotated regions without a
// libclang dependency. The lexer's job is to make that sound: nothing inside
// a comment, string literal (including raw strings), or character literal
// ever reaches the token stream, and every token knows its line/column and
// whether it sits on a preprocessor line.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace wcle_lint {

enum class TokKind : std::uint8_t {
  kIdent,   ///< identifier or keyword
  kNumber,  ///< numeric literal (pp-number)
  kString,  ///< string literal, contents dropped
  kChar,    ///< character literal, contents dropped
  kPunct,   ///< punctuation; "::" and "->" are single tokens
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;        ///< literal tokens carry an empty text
  std::uint32_t line = 0;  ///< 1-based
  std::uint32_t col = 0;   ///< 1-based
  bool pp = false;         ///< token lies on a preprocessor line
};

/// A comment, kept out of the token stream but preserved for directive
/// parsing (suppressions and no-alloc region markers, see linter.hpp).
struct Comment {
  std::string text;        ///< body without the // or /* */ framing
  std::uint32_t line = 0;  ///< line the comment starts on
  bool trailing = false;   ///< code tokens precede it on the same line
  bool block = false;      ///< a /* */ comment (directives only bind in //)
};

/// A quoted `#include "path"` directive. Angle includes are not captured:
/// only intra-project includes participate in the layering rule.
struct IncludeDirective {
  std::string path;        ///< the text between the quotes
  std::uint32_t line = 0;  ///< line of the #include
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  std::vector<IncludeDirective> includes;
};

/// Tokenizes a C++ source buffer. Never fails: unterminated literals and
/// comments are closed at end-of-file (the rules only need a best-effort
/// stream, and a truncated file should not crash the linter).
LexResult lex(const std::string& source);

}  // namespace wcle_lint
