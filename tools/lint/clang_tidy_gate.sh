#!/bin/sh
# Enforced clang-tidy gate for the bugprone-* / concurrency-* families.
#
#   tools/lint/clang_tidy_gate.sh            fail on findings not in baseline
#   tools/lint/clang_tidy_gate.sh --update   rewrite the baseline from HEAD
#
# wcle_lint covers the project-specific invariants; this gate adds the two
# generic clang-tidy families whose findings are almost always real bugs.
# It is a ratchet, not a freeze: a finding already recorded (as a
# "<file> <check>" pair) in tools/lint/clang_tidy_baseline.txt passes, a
# new one fails, and a fixed one is reported so the baseline can shrink.
# Pairs are line-insensitive on purpose — unrelated edits that shift line
# numbers must not invalidate the baseline.
#
# Needs build/compile_commands.json (configure with
# -DCMAKE_EXPORT_COMPILE_COMMANDS=ON). A missing clang-tidy is a soft
# skip so uninstrumented dev machines are not blocked; CI installs it.
set -u

root=$(git rev-parse --show-toplevel 2>/dev/null) || {
  echo "clang_tidy_gate: not inside a git checkout" >&2
  exit 2
}
cd "$root" || exit 2

baseline="tools/lint/clang_tidy_baseline.txt"

if ! command -v clang-tidy > /dev/null 2>&1; then
  echo "clang_tidy_gate: clang-tidy not installed — skipping (CI runs it)"
  exit 0
fi
if [ ! -f build/compile_commands.json ]; then
  echo "clang_tidy_gate: build/compile_commands.json missing" >&2
  echo "clang_tidy_gate: configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" \
    >&2
  exit 2
fi

# Checks are pinned here, not in .clang-tidy, so the enforced set cannot
# drift with the advisory config. The two disabled checks are stylistic
# within these families (parameter-order taste, pervasive size_t↔int in
# simulation counters) and would bury the real signal.
checks='-*,bugprone-*,concurrency-*'
checks="$checks,-bugprone-easily-swappable-parameters"
checks="$checks,-bugprone-narrowing-conversions"

tmpdir=$(mktemp -d) || exit 2
trap 'rm -rf "$tmpdir"' EXIT

git ls-files 'src/wcle/*.cpp' 'tools/lint/*.cpp' > "$tmpdir/files"

# shellcheck disable=SC2046  # word-splitting the file list is intended
clang-tidy -p build --quiet --checks="$checks" \
  $(cat "$tmpdir/files") > "$tmpdir/raw" 2> /dev/null
tidy_status=$?
if [ "$tidy_status" -gt 1 ]; then
  echo "clang_tidy_gate: clang-tidy itself failed (exit $tidy_status)" >&2
  sed -n '1,40p' "$tmpdir/raw" >&2
  exit 2
fi

# Normalize "…/src/wcle/foo.cpp:12:3: warning: msg [check-id]" down to
# "src/wcle/foo.cpp check-id" pairs, deduplicated and sorted.
sed -nE \
  's@^.*((src/wcle|tools/lint)/[^:]+):[0-9]+:[0-9]+: warning:.*\[([^]]+)\]$@\1 \3@p' \
  "$tmpdir/raw" | sort -u > "$tmpdir/current"

if [ "${1:-}" = "--update" ]; then
  {
    echo "# clang-tidy baseline: known bugprone-*/concurrency-* findings."
    echo "# One '<file> <check-id>' pair per line, sorted. Regenerate with"
    echo "#   sh tools/lint/clang_tidy_gate.sh --update"
    echo "# New pairs fail CI; shrink this file as findings are fixed."
    cat "$tmpdir/current"
  } > "$baseline"
  echo "clang_tidy_gate: baseline rewritten" \
    "($(wc -l < "$tmpdir/current") finding(s))"
  exit 0
fi

grep -v '^#' "$baseline" 2> /dev/null | sort -u > "$tmpdir/known"

comm -13 "$tmpdir/known" "$tmpdir/current" > "$tmpdir/new"
comm -23 "$tmpdir/known" "$tmpdir/current" > "$tmpdir/fixed"

if [ -s "$tmpdir/fixed" ]; then
  echo "clang_tidy_gate: baseline entries no longer firing (remove them):"
  sed 's/^/  /' "$tmpdir/fixed"
fi
if [ -s "$tmpdir/new" ]; then
  echo "clang_tidy_gate: NEW bugprone/concurrency findings:" >&2
  sed 's/^/  /' "$tmpdir/new" >&2
  echo "clang_tidy_gate: full diagnostics for the new pairs:" >&2
  while read -r file check; do
    grep -F "$file" "$tmpdir/raw" | grep -F "[$check]" >&2 || true
  done < "$tmpdir/new"
  echo "clang_tidy_gate: fix them, or record them with --update and a" >&2
  echo "clang_tidy_gate: justification in the PR description" >&2
  exit 1
fi

echo "clang_tidy_gate: clean ($(wc -l < "$tmpdir/current")" \
  "baseline finding(s), 0 new)"
exit 0
