// E13 — the whole registry under one roof. The point of the unified
// Algorithm API: every election protocol in the library runs under identical
// harness conditions (same graphs, same seeds, same trial engine), so the
// Theorem 13 comparison is a single table instead of twelve bespoke mains.
// Broadcast/diagnostic protocols get their own table with the same schema.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_common.hpp"
#include "wcle/api/registry.hpp"
#include "wcle/api/trials.hpp"
#include "wcle/graph/families.hpp"
#include "wcle/support/table.hpp"

namespace {

using namespace wcle;

void matrix_for(const std::string& family, NodeId n, int trials) {
  const Graph g = make_family(family, n, 0xE13);
  RunOptions options;
  Table t({"algorithm", "kind", "msgs(mean)", "msgs(max)", "rounds(mean)",
           "success"});
  for (const Algorithm* a : AlgorithmRegistry::instance().all()) {
    if (a->kind() == Algorithm::Kind::kElection && !a->reliable_on(g))
      continue;  // e.g. clique_referee off-clique: not a fair row
    const TrialStats s = run_trials(*a, g, options, trials, 0xE1300);
    t.add_row({a->name(), kind_name(a->kind()),
               Table::num(s.congest_messages.mean),
               Table::num(s.congest_messages.max), Table::num(s.rounds.mean),
               Table::num(s.success_rate, 2)});
  }
  bench::print_report(
      "E13: all registered algorithms on " + family + "_" +
          std::to_string(g.node_count()),
      t,
      "one registry, one trial engine, one schema — the Theorem 13 "
      "comparison as a single sweep");
}

void run_tables() {
  const int sc = bench::scale();
  const int trials = sc == 0 ? 2 : 3;
  const NodeId n = sc == 2 ? 512 : (sc == 1 ? 256 : 64);
  matrix_for("clique", n, trials);
  matrix_for("hypercube", n, trials);
  if (sc >= 1) matrix_for("expander", n, trials);
}

void BM_RegistryElectionSweep(benchmark::State& state) {
  const Graph g = make_family("hypercube", 256, 0xE13);
  const Algorithm& a = AlgorithmRegistry::instance().at("election");
  RunOptions options;
  std::uint64_t msgs = 0;
  for (auto _ : state) {
    options.set_seed(options.seed() + 1);
    msgs = a.run(g, options).totals.congest_messages;
  }
  state.counters["congest_msgs"] = static_cast<double>(msgs);
}
BENCHMARK(BM_RegistryElectionSweep)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

WCLE_BENCH_MAIN(run_tables)
