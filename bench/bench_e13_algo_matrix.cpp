// E13 — the whole registry under one roof. The point of the unified
// Algorithm API + sweep engine: every protocol in the library runs under
// identical harness conditions (same graphs, same seeds, same trial engine),
// so the Theorem 13 comparison is one declarative grid instead of thirteen
// bespoke mains. The builtin spec "e13" (`wcle_cli sweep --spec=e13`) is
// algo=all x {clique, hypercube, expander} with reliable_on filtering.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "wcle/api/registry.hpp"
#include "wcle/graph/families.hpp"

namespace {

using namespace wcle;

void run_tables() { bench::run_builtin("e13"); }

void BM_RegistryElectionSweep(benchmark::State& state) {
  const Graph g = make_family("hypercube", 256, 0xE13);
  const Algorithm& a = AlgorithmRegistry::instance().at("election");
  RunOptions options;
  std::uint64_t msgs = 0;
  for (auto _ : state) {
    options.set_seed(options.seed() + 1);
    msgs = a.run(g, options).totals.congest_messages;
  }
  state.counters["congest_msgs"] = static_cast<double>(msgs);
}
BENCHMARK(BM_RegistryElectionSweep)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

WCLE_BENCH_MAIN(run_tables)
