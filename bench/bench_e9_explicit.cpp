// E9 — Corollary 14, the explicit variant.
// Paper: explicit election costs O(sqrt(n) log^{7/2} n tmix + n log n / phi)
// messages; the concluding observation is that the broadcast term dominates,
// i.e. "the major communication cost for the explicit variant comes from
// broadcasting the leader information rather than electing". We sweep cliques
// and tori and report the elect/broadcast message split.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench_common.hpp"
#include "wcle/analysis/experiment.hpp"
#include "wcle/core/explicit_election.hpp"
#include "wcle/graph/generators.hpp"
#include "wcle/support/table.hpp"

namespace {

using namespace wcle;

void run_tables() {
  const int sc = bench::scale();
  struct Case {
    const char* name;
    Graph g;
  };
  std::vector<Case> cases;
  cases.push_back({"clique_256", make_clique(256)});
  cases.push_back({"clique_512", make_clique(512)});
  cases.push_back({"torus_16x16", make_torus(16, 16)});
  if (sc >= 1) {
    cases.push_back({"clique_1024", make_clique(1024)});
    cases.push_back({"torus_24x24", make_torus(24, 24)});
  }
  if (sc >= 2) cases.push_back({"clique_2048", make_clique(2048)});

  Table t({"graph", "elect msgs", "bcast msgs", "bcast/elect", "elect rounds",
           "bcast rounds", "success"});
  for (const Case& c : cases) {
    ElectionParams p;
    p.seed = 0xE9000;
    const ExplicitElectionResult r = run_explicit_election(c.g, p);
    const double elect = double(r.election.totals.congest_messages);
    const double bcast = double(r.broadcast.totals.congest_messages);
    t.add_row({c.name, Table::num(elect), Table::num(bcast),
               Table::num(bcast / elect, 3),
               Table::num(double(r.election.totals.rounds)),
               Table::num(double(r.broadcast.rounds)),
               r.success ? "yes" : "NO"});
  }
  bench::print_report(
      "E9: Corollary 14 — explicit = implicit election + push-pull broadcast",
      t,
      "Cor 14's two cost terms, measured. Asymptotically the n log n / phi "
      "broadcast term dominates; at simulable n the election's log^{7/2} n "
      "factor keeps the ratio flat — see EXPERIMENTS.md for the crossover "
      "estimate (~2^20 nodes)");
}

void BM_ExplicitElection(benchmark::State& state) {
  const Graph g = make_clique(static_cast<NodeId>(state.range(0)));
  ElectionParams p;
  std::uint64_t total = 0;
  for (auto _ : state) {
    p.seed += 1;
    total = run_explicit_election(g, p).total_congest_messages();
  }
  state.counters["total_msgs"] = static_cast<double>(total);
}
BENCHMARK(BM_ExplicitElection)->Arg(512)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

WCLE_BENCH_MAIN(run_tables)
