// E9 — Corollary 14, the explicit variant.
// Paper: explicit election costs O(sqrt(n) log^{7/2} n tmix + n log n / phi)
// messages; the concluding observation is that the broadcast term dominates,
// i.e. "the major communication cost for the explicit variant comes from
// broadcasting the leader information rather than electing". The
// clique/torus sweep is the builtin spec "e9" (`wcle_cli sweep --spec=e9`,
// columns election_messages / broadcast_messages); this binary derives the
// bcast/elect ratio per cell.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench_common.hpp"
#include "wcle/core/explicit_election.hpp"
#include "wcle/graph/generators.hpp"
#include "wcle/support/table.hpp"

namespace {

using namespace wcle;

void run_tables() {
  const std::vector<CellResult> results = bench::run_builtin("e9");
  Table t({"graph", "n", "bcast/elect"});
  for (const CellResult& r : results) {
    const auto elect = r.stats.extras.find("election_messages");
    const auto bcast = r.stats.extras.find("broadcast_messages");
    if (elect == r.stats.extras.end() || bcast == r.stats.extras.end())
      continue;
    t.add_row({r.cell.family, std::to_string(r.n),
               Table::num(bcast->second.mean /
                              std::max(1.0, elect->second.mean), 3)});
  }
  bench::print_report(
      "E9 (derived): Cor 14 cost split", t,
      "asymptotically the n log n / phi broadcast term dominates; at "
      "simulable n the election's log^{7/2} n factor keeps the ratio flat — "
      "crossover estimate ~2^20 nodes");
}

void BM_ExplicitElection(benchmark::State& state) {
  const Graph g = make_clique(static_cast<NodeId>(state.range(0)));
  ElectionParams p;
  std::uint64_t total = 0;
  for (auto _ : state) {
    p.seed += 1;
    total = run_explicit_election(g, p).total_congest_messages();
  }
  state.counters["total_msgs"] = static_cast<double>(total);
}
BENCHMARK(BM_ExplicitElection)->Arg(512)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

WCLE_BENCH_MAIN(run_tables)
