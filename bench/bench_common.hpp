// Shared scaffolding for the experiment benches. Each bench binary:
//   1. runs its deterministic parameter sweep and prints the paper-style
//      table (the rows EXPERIMENTS.md records), then
//   2. registers the headline configuration as a google-benchmark case (one
//      iteration, counters for messages/rounds) so the standard benchmark
//      tooling also sees it.
// Sweep sizes honour the WCLE_BENCH_SCALE env var (0 = quick, 1 = default,
// 2 = extended) so CI and laptops can trade depth for time.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>
#include <string>

#include "wcle/support/table.hpp"

namespace wcle::bench {

/// 0 = quick, 1 = default, 2 = extended.
inline int scale() {
  if (const char* s = std::getenv("WCLE_BENCH_SCALE")) {
    const int v = std::atoi(s);
    if (v >= 0 && v <= 2) return v;
  }
  return 1;
}

/// Prints the experiment banner + table and an optional trailing note.
inline void print_report(const std::string& title, const Table& table,
                         const std::string& note = {}) {
  std::cout << "\n=== " << title << " ===\n";
  table.print(std::cout);
  if (!note.empty()) std::cout << note << "\n";
  std::cout.flush();
}

/// Boilerplate main: print tables (via `run_tables`), then hand over to
/// google-benchmark for the registered cases.
#define WCLE_BENCH_MAIN(run_tables)                          \
  int main(int argc, char** argv) {                          \
    run_tables();                                            \
    ::benchmark::Initialize(&argc, argv);                    \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();                   \
    ::benchmark::Shutdown();                                 \
    return 0;                                                \
  }

}  // namespace wcle::bench
