// Thin scaffolding for the experiment benches, which since the sweep engine
// are mostly declarative: each bench binary
//   1. runs its builtin ExperimentSpec (wcle/api/scenario.hpp) through the
//      sweep engine and prints the paper-style table — the exact table
//      `wcle_cli sweep --spec=eK` reproduces — plus any supplemental
//      proof-mechanism tables that are not sweep-shaped, then
//   2. registers its headline configuration as a google-benchmark case so
//      the standard benchmark tooling also sees it.
// Sweep sizes honour the WCLE_BENCH_SCALE env var (0 = quick, 1 = default,
// 2 = extended) so CI and laptops can trade depth for time.
#pragma once

#include <benchmark/benchmark.h>

#include <iostream>
#include <string>
#include <vector>

#include "wcle/api/scenario.hpp"
#include "wcle/api/sink.hpp"
#include "wcle/api/sweep.hpp"
#include "wcle/graph/families.hpp"
#include "wcle/support/table.hpp"

namespace wcle::bench {

/// 0 = quick, 1 = default, 2 = extended (WCLE_BENCH_SCALE).
inline int scale() { return wcle::default_bench_scale(); }

/// Runs `spec` through the sweep engine with the paper-style table sink and
/// returns the per-cell results for bespoke post-analysis (power-law fits,
/// envelope ratios, ...).
inline std::vector<CellResult> run_spec(const ExperimentSpec& spec) {
  TableSink sink(std::cout);
  return run_sweep(spec, {&sink});
}

/// Convenience: the builtin experiment at the ambient scale.
inline std::vector<CellResult> run_builtin(const std::string& name) {
  return run_spec(builtin_experiment(name, scale()));
}

/// The alpha of a "lowerbound[:alpha]" family string, resolved by the family
/// registry itself so the default and validation cannot drift from what the
/// graph was actually built with. Used by the E7/E8/E10 normalization
/// columns.
inline double alpha_of(const std::string& family) {
  return wcle::lowerbound_alpha(family);
}

/// Prints a supplemental banner + table + note (for the proof-mechanism
/// illustrations that are not sweep-shaped).
inline void print_report(const std::string& title, const Table& table,
                         const std::string& note = {}) {
  std::cout << "\n=== " << title << " ===\n";
  table.print(std::cout);
  if (!note.empty()) std::cout << note << "\n";
  std::cout.flush();
}

/// Boilerplate main: print tables (via `run_tables`), then hand over to
/// google-benchmark for the registered cases.
#define WCLE_BENCH_MAIN(run_tables)                          \
  int main(int argc, char** argv) {                          \
    run_tables();                                            \
    ::benchmark::Initialize(&argc, argv);                    \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();                   \
    ::benchmark::Shutdown();                                 \
    return 0;                                                \
  }

}  // namespace wcle::bench
