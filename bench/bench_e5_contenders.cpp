// E5 — Lemma 1, contender concentration.
// Paper: w.h.p. the contender count lies in [3/4 c1 log n, 5/4 c1 log n].
// The sampling sweep is the builtin spec "e5" (`wcle_cli sweep --spec=e5`):
// the registered `contender_stage` diagnostic samples the lottery once per
// trial, so mean(in_window) in the table IS Pr[in window] and mean(zero) is
// the n^{-c1} total-failure rate — illustrating both the lemma and the
// finite-size slack that motivates the threshold correction in DESIGN.md.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "wcle/core/params.hpp"
#include "wcle/support/rng.hpp"

namespace {

using namespace wcle;

void run_tables() { bench::run_builtin("e5"); }

std::uint64_t sample_contenders(NodeId n, double p_contender,
                                std::uint64_t seed) {
  Rng rng(seed);
  std::uint64_t count = 0;
  for (NodeId v = 0; v < n; ++v) count += rng.next_bool(p_contender);
  return count;
}

void BM_ContenderSampling(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  ElectionParams params;
  std::uint64_t seed = 1, last = 0;
  for (auto _ : state)
    last = sample_contenders(n, params.contender_probability(n), seed++);
  state.counters["contenders"] = static_cast<double>(last);
}
BENCHMARK(BM_ContenderSampling)->Arg(65536)->Unit(benchmark::kMicrosecond);

}  // namespace

WCLE_BENCH_MAIN(run_tables)
