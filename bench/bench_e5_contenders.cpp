// E5 — Lemma 1, contender concentration.
// Paper: w.h.p. the contender count lies in [3/4 c1 log n, 5/4 c1 log n].
// We sample the contender stage many times per n and report the empirical
// mean, spread, and the fraction of samples inside the paper's window —
// illustrating both the lemma and the finite-size slack that motivates the
// threshold correction documented in DESIGN.md.
#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

#include "bench_common.hpp"
#include "wcle/core/params.hpp"
#include "wcle/support/rng.hpp"
#include "wcle/support/stats.hpp"
#include "wcle/support/table.hpp"

namespace {

using namespace wcle;

std::uint64_t sample_contenders(NodeId n, double p_contender,
                                std::uint64_t seed) {
  Rng rng(seed);
  std::uint64_t count = 0;
  for (NodeId v = 0; v < n; ++v) count += rng.next_bool(p_contender);
  return count;
}

void run_tables() {
  const int sc = bench::scale();
  const int samples = sc == 0 ? 200 : (sc == 1 ? 1000 : 5000);
  std::vector<NodeId> sizes{256, 1024, 4096, 16384};
  if (sc >= 1) sizes.push_back(65536);
  if (sc >= 2) sizes.push_back(262144);

  ElectionParams params;
  Table t({"n", "E[X]=c1 log n", "mean", "stddev", "lo=3/4 c1 log n",
           "hi=5/4 c1 log n", "Pr[in window]", "Pr[X=0]"});
  for (const NodeId n : sizes) {
    const double mu = params.c1 * params.log2_n(n);
    const double lo = 0.75 * mu, hi = 1.25 * mu;
    std::vector<double> xs;
    int in_window = 0, zero = 0;
    for (int s = 0; s < samples; ++s) {
      const std::uint64_t x = sample_contenders(
          n, params.contender_probability(n), 0xE5000 + n + s);
      xs.push_back(static_cast<double>(x));
      if (static_cast<double>(x) >= lo && static_cast<double>(x) <= hi)
        ++in_window;
      if (x == 0) ++zero;
    }
    const Summary sum = summarize(std::move(xs));
    t.add_row({std::to_string(n), Table::num(mu), Table::num(sum.mean),
               Table::num(sum.stddev), Table::num(lo), Table::num(hi),
               Table::num(in_window / double(samples), 3),
               Table::num(zero / double(samples), 3)});
  }
  bench::print_report(
      "E5: Lemma 1 — contender concentration in [3/4, 5/4] c1 log n", t,
      "Pr[in window] must grow toward 1 with n (Chernoff); Pr[X=0] ~ n^-c1");
}

void BM_ContenderSampling(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  ElectionParams params;
  std::uint64_t seed = 1, last = 0;
  for (auto _ : state)
    last = sample_contenders(n, params.contender_probability(n), seed++);
  state.counters["contenders"] = static_cast<double>(last);
}
BENCHMARK(BM_ContenderSampling)->Arg(65536)->Unit(benchmark::kMicrosecond);

}  // namespace

WCLE_BENCH_MAIN(run_tables)
