// E6 — Lemmas 3/6, the guess-and-double stopping rule, plus the bandwidth
// and token-coalescing ablations (DESIGN.md §5).
// Paper: every contender stops once t_u = c3 tmix (c3 > 1); guess-and-double
// costs only a constant factor over the final guess. The whole grid —
// families x {standard, wide} bandwidth x {coalesced, naive} tokens — is the
// builtin spec "e6" (`wcle_cli sweep --spec=e6`): final_length is the
// stopping t_u (Theta(tmix)), phases its log, and the wide/coalesce rows
// chart Lemma 12's two regimes in the same table.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "wcle/core/leader_election.hpp"
#include "wcle/graph/generators.hpp"

namespace {

using namespace wcle;

void run_tables() { bench::run_builtin("e6"); }

void BM_StoppingTorus(benchmark::State& state) {
  const Graph g = make_torus(16, 16);
  ElectionParams p;
  std::uint64_t len = 0;
  for (auto _ : state) {
    p.seed += 1;
    len = run_leader_election(g, p).final_length;
  }
  state.counters["stop_t_u"] = static_cast<double>(len);
}
BENCHMARK(BM_StoppingTorus)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

WCLE_BENCH_MAIN(run_tables)
