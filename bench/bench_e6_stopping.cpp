// E6 — Lemmas 3/6, the guess-and-double stopping rule, plus the coalescing
// ablation from DESIGN.md §5.
// Paper: every contender stops once t_u = c3 tmix (c3 > 1); guess-and-double
// costs only a constant factor over the final guess. We report, per family,
// the measured tmix, the stopping t_u (should be Theta(tmix), and <= 2 c3
// tmix thanks to doubling), and the number of phases (= log2 of final t_u).
// The ablation compares the CONGEST message bill in the narrow O(log n)
// versus wide O(log^3 n) regimes (Lemma 12's two bounds).
#include <benchmark/benchmark.h>

#include <vector>

#include "bench_common.hpp"
#include "wcle/analysis/experiment.hpp"
#include "wcle/graph/generators.hpp"
#include "wcle/support/table.hpp"

namespace {

using namespace wcle;

void run_tables() {
  const int sc = bench::scale();
  const int trials = sc == 0 ? 3 : 5;

  struct Case {
    const char* name;
    Graph g;
  };
  std::vector<Case> cases;
  cases.push_back({"clique_256", make_clique(256)});
  cases.push_back({"hypercube_256", make_hypercube(8)});
  cases.push_back({"torus_16x16", make_torus(16, 16)});
  {
    Rng grng(0xE6001);
    cases.push_back({"expander6_256", make_random_regular(256, 6, grng)});
  }
  if (sc >= 1) {
    cases.push_back({"torus_24x24", make_torus(24, 24)});
    Rng grng(0xE6002);
    cases.push_back({"expander6_1024", make_random_regular(1024, 6, grng)});
  }

  Table t({"family", "tmix", "stop_t_u(mean)", "t_u/tmix", "phases",
           "success", "paper bound"});
  for (const Case& c : cases) {
    const GraphProfile prof = profile_graph(c.g, 2);
    ElectionParams p;
    const ElectionTrialStats stats =
        run_election_trials(c.g, p, trials, 0xE6100);
    t.add_row({c.name, std::to_string(prof.tmix),
               Table::num(stats.final_length.mean),
               Table::num(stats.final_length.mean /
                          std::max<double>(1.0, double(prof.tmix))),
               Table::num(stats.phases.mean, 3),
               Table::num(stats.success_rate, 2), "t_u <= 2 c3 tmix"});
  }

  // Ablations (DESIGN.md §5): wide links (item 5) and token coalescing
  // (item 1) against the paper's defaults.
  Table t2({"family", "paper msgs", "wide msgs", "naive-token msgs",
            "wide saves x", "coalescing saves x"});
  for (const Case& c : cases) {
    ElectionParams paper;
    paper.seed = 0xE6200;
    ElectionParams wide = paper;
    wide.wide_messages = true;
    ElectionParams naive = paper;
    naive.coalesce_tokens = false;
    const ElectionResult rp = run_leader_election(c.g, paper);
    const ElectionResult rw = run_leader_election(c.g, wide);
    const ElectionResult rn = run_leader_election(c.g, naive);
    t2.add_row({c.name, Table::num(double(rp.totals.congest_messages)),
                Table::num(double(rw.totals.congest_messages)),
                Table::num(double(rn.totals.congest_messages)),
                Table::num(double(rp.totals.congest_messages) /
                           double(rw.totals.congest_messages), 3),
                Table::num(double(rn.totals.congest_messages) /
                           double(rp.totals.congest_messages), 3)});
  }

  bench::print_report("E6a: Lemmas 3/6 — stopping t_u tracks tmix", t,
                      "t_u/tmix should be a small constant across families");
  bench::print_report(
      "E6b: ablations — wide links (Lemma 12's 2nd regime) and token "
      "coalescing", t2,
      "wide links recover ~log^2 n (6-9x here). Coalescing shows ~1x in these "
      "end-to-end runs: with c2 sqrt(n log n) walks over n nodes the tokens "
      "spread to ~1 unit per (origin, level, edge) after the first hops, so "
      "there is little to merge at bench scale; under dense load the same "
      "mechanism saves >3x (test_ablations.cpp, 4096 walks on a 16-clique) "
      "and its asymptotic role in Lemma 12 is the worst-case bound, not the "
      "typical path");
}

void BM_StoppingTorus(benchmark::State& state) {
  const Graph g = make_torus(16, 16);
  ElectionParams p;
  std::uint64_t len = 0;
  for (auto _ : state) {
    p.seed += 1;
    len = run_leader_election(g, p).final_length;
  }
  state.counters["stop_t_u"] = static_cast<double>(len);
}
BENCHMARK(BM_StoppingTorus)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

WCLE_BENCH_MAIN(run_tables)
