// E2 — Theorem 13, time complexity on expanders.
// Paper: O(tmix log^2 n) rounds. We report measured rounds (quiescence-driven
// execution), the paper's conservative schedule (sum of 6T per phase), and
// the envelope tmix log^2 n. Measured rounds must sit below the schedule
// (Lemma 12's congestion padding) and track the envelope's growth.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench_common.hpp"
#include "wcle/analysis/experiment.hpp"
#include "wcle/graph/generators.hpp"
#include "wcle/support/stats.hpp"
#include "wcle/support/table.hpp"

namespace {

using namespace wcle;

void run_tables() {
  const int sc = bench::scale();
  std::vector<NodeId> sizes{256, 512, 1024};
  if (sc >= 1) sizes.push_back(2048);
  if (sc >= 2) sizes.push_back(4096);
  const int trials = sc == 0 ? 3 : 5;

  Table t({"n", "tmix", "rounds(mean)", "schedule(mean)", "envelope",
           "rounds/envelope", "final_t_u", "phases", "success"});
  std::vector<double> xs, ys;
  for (const NodeId n : sizes) {
    Rng grng(0xE2000 + n);
    const Graph g = make_random_regular(n, 6, grng);
    const GraphProfile prof = profile_graph(g, 2);
    ElectionParams p;
    const ElectionTrialStats stats = run_election_trials(g, p, trials, n);
    const double envelope = theorem13_time_envelope(n, prof.tmix);
    t.add_row({std::to_string(n), std::to_string(prof.tmix),
               Table::num(stats.rounds.mean),
               Table::num(stats.scheduled_rounds.mean), Table::num(envelope),
               Table::num(stats.rounds.mean / envelope),
               Table::num(stats.final_length.mean, 3),
               Table::num(stats.phases.mean, 3),
               Table::num(stats.success_rate, 2)});
    xs.push_back(static_cast<double>(n));
    ys.push_back(stats.rounds.mean);
  }
  const LineFit fit = fit_power_law(xs, ys);
  bench::print_report(
      "E2: Theorem 13 — time on 6-regular expanders", t,
      "empirical exponent: rounds ~ n^" + Table::num(fit.slope, 3) +
          "  (theory: polylog(n) only, exponent ~0; rounds <= schedule "
          "verifies Lemma 12's padding)");
}

void BM_ElectionTimeExpander(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng grng(0xE2000 + n);
  const Graph g = make_random_regular(n, 6, grng);
  ElectionParams p;
  std::uint64_t rounds = 0, sched = 0;
  for (auto _ : state) {
    p.seed += 1;
    const ElectionResult r = run_leader_election(g, p);
    rounds = r.totals.rounds;
    sched = r.scheduled_rounds;
  }
  state.counters["rounds"] = static_cast<double>(rounds);
  state.counters["schedule"] = static_cast<double>(sched);
}
BENCHMARK(BM_ElectionTimeExpander)->Arg(512)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

WCLE_BENCH_MAIN(run_tables)
