// E2 — Theorem 13, time complexity on expanders.
// Paper: O(tmix log^2 n) rounds. The sweep is the builtin spec "e2"
// (`wcle_cli sweep --spec=e2`); measured rounds must sit below the paper's
// conservative schedule (scheduled_rounds column — Lemma 12's congestion
// padding), which this binary verifies and annotates with the growth fit.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench_common.hpp"
#include "wcle/core/leader_election.hpp"
#include "wcle/graph/generators.hpp"
#include "wcle/support/stats.hpp"
#include "wcle/support/table.hpp"

namespace {

using namespace wcle;

void run_tables() {
  const std::vector<CellResult> results = bench::run_builtin("e2");
  std::vector<double> xs, ys;
  bool under_schedule = true;
  for (const CellResult& r : results) {
    xs.push_back(static_cast<double>(r.n));
    ys.push_back(r.stats.rounds.mean);
    // schedule_slack is per-trial (schedule - rounds); its min going
    // negative means some trial exceeded its own Lemma 12 schedule.
    const auto slack = r.stats.extras.find("schedule_slack");
    if (slack != r.stats.extras.end() && slack->second.min < 0.0)
      under_schedule = false;
  }
  const LineFit fit = fit_power_law(xs, ys);
  std::cout << "empirical exponent: rounds ~ n^" << Table::num(fit.slope, 3)
            << "  (theory: polylog only, exponent ~0); rounds <= schedule: "
            << (under_schedule ? "yes (Lemma 12's padding verified)"
                               : "VIOLATED")
            << "\n";
}

void BM_ElectionTimeExpander(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng grng(0xE2000 + n);
  const Graph g = make_random_regular(n, 6, grng);
  ElectionParams p;
  std::uint64_t rounds = 0, sched = 0;
  for (auto _ : state) {
    p.seed += 1;
    const ElectionResult r = run_leader_election(g, p);
    rounds = r.totals.rounds;
    sched = r.scheduled_rounds;
  }
  state.counters["rounds"] = static_cast<double>(rounds);
  state.counters["schedule"] = static_cast<double>(sched);
}
BENCHMARK(BM_ElectionTimeExpander)->Arg(512)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

WCLE_BENCH_MAIN(run_tables)
