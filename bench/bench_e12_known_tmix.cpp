// E12 — what does *not* knowing tmix cost? (the paper vs Kutten et al. [25]
// vs estimate-then-elect [29])
// The paper's contribution over [25] is removing the assumption that nodes
// know tmix, at the price of guess-and-double phases and the congestion pad;
// the rejected third option estimates tmix distributedly first (Omega(m)
// messages) and then runs [25]. All three run under identical conditions in
// the builtin spec "e12" (`wcle_cli sweep --spec=e12`); this binary derives
// the message/round overhead ratios per family, which theory caps at
// O(log^2 n) in time and a constant factor in walk stages.
#include <benchmark/benchmark.h>

#include <map>
#include <vector>

#include "bench_common.hpp"
#include "wcle/baselines/known_tmix.hpp"
#include "wcle/core/params.hpp"
#include "wcle/graph/generators.hpp"
#include "wcle/graph/spectral.hpp"
#include "wcle/support/table.hpp"

namespace {

using namespace wcle;

void run_tables() {
  const std::vector<CellResult> results = bench::run_builtin("e12");
  // Regroup by family: ours vs the two tmix-knowledge baselines.
  struct Row {
    double msgs = 0, rounds = 0;
  };
  std::map<std::string, std::map<std::string, Row>> by_family;
  for (const CellResult& r : results)
    by_family[r.cell.family + "_" + std::to_string(r.n)][r.cell.algorithm] = {
        r.stats.congest_messages.mean, r.stats.rounds.mean};
  Table t({"graph", "msgs ours/known", "rounds ours/known",
           "msgs est+elect/ours"});
  for (const auto& [family, algos] : by_family) {
    const auto ours = algos.find("election");
    const auto known = algos.find("known_tmix");
    const auto est = algos.find("estimate_then_elect");
    if (ours == algos.end() || known == algos.end() || est == algos.end())
      continue;
    t.add_row({family,
               Table::num(ours->second.msgs / known->second.msgs, 3),
               Table::num(ours->second.rounds / known->second.rounds, 3),
               Table::num(est->second.msgs / ours->second.msgs, 3)});
  }
  bench::print_report(
      "E12 (derived): the price of not knowing tmix", t,
      "ours/known quantifies guess-and-double + exchange overhead (theory: "
      "O(log^2 n) in rounds); est+elect/ours > 1 is the Omega(m) estimation "
      "fee that makes the [29] route lose");
}

void BM_KnownTmix(benchmark::State& state) {
  const Graph g = make_hypercube(8);
  const std::uint32_t tmix =
      static_cast<std::uint32_t>(mixing_time_exact(g, 1u << 18));
  ElectionParams p;
  std::uint64_t msgs = 0;
  for (auto _ : state) {
    p.seed += 1;
    msgs = run_known_tmix_election(g, 2 * tmix, p).totals.congest_messages;
  }
  state.counters["congest_msgs"] = static_cast<double>(msgs);
}
BENCHMARK(BM_KnownTmix)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

WCLE_BENCH_MAIN(run_tables)
