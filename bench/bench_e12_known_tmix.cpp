// E12 — what does *not* knowing tmix cost? (the paper vs Kutten et al. [25])
// The paper's contribution over [25] is removing the assumption that nodes
// know tmix, at the price of guess-and-double phases and the congestion pad.
// We run both on the same graphs: the known-tmix baseline does one walk stage
// of length 2*tmix; ours discovers the length. Reported ratios quantify the
// overhead, which theory caps at O(log^2 n) in time and a constant factor in
// walk stages (the doubling sum).
#include <benchmark/benchmark.h>

#include <vector>

#include "bench_common.hpp"
#include "wcle/analysis/experiment.hpp"
#include "wcle/baselines/known_tmix.hpp"
#include "wcle/baselines/tmix_estimator.hpp"
#include "wcle/core/leader_election.hpp"
#include "wcle/graph/generators.hpp"
#include "wcle/graph/spectral.hpp"
#include "wcle/support/table.hpp"

namespace {

using namespace wcle;

void run_tables() {
  const int sc = bench::scale();
  const int trials = sc == 0 ? 3 : 5;
  struct Case {
    const char* name;
    Graph g;
  };
  std::vector<Case> cases;
  cases.push_back({"clique_256", make_clique(256)});
  cases.push_back({"hypercube_256", make_hypercube(8)});
  {
    Rng grng(0xEC001);
    cases.push_back({"expander6_512", make_random_regular(512, 6, grng)});
  }
  if (sc >= 1) cases.push_back({"torus_16x16", make_torus(16, 16)});

  Table t({"graph", "tmix", "ours msgs", "known msgs", "msg ratio",
           "ours rounds", "known rounds", "round ratio", "ours ok",
           "known ok"});
  for (const Case& c : cases) {
    const std::uint32_t tmix =
        static_cast<std::uint32_t>(mixing_time_exact(c.g, 1u << 18));
    ElectionParams p;
    double ours_msgs = 0, ours_rounds = 0, ours_ok = 0;
    double known_msgs = 0, known_rounds = 0, known_ok = 0;
    for (int s = 0; s < trials; ++s) {
      p.seed = 0xEC100 + s;
      const ElectionResult r = run_leader_election(c.g, p);
      ours_msgs += double(r.totals.congest_messages);
      ours_rounds += double(r.totals.rounds);
      ours_ok += r.success();
      const KnownTmixResult k =
          run_known_tmix_election(c.g, 2 * tmix + 1, p);
      known_msgs += double(k.totals.congest_messages);
      known_rounds += double(k.rounds);
      known_ok += k.success();
    }
    t.add_row({c.name, std::to_string(tmix),
               Table::num(ours_msgs / trials), Table::num(known_msgs / trials),
               Table::num(ours_msgs / known_msgs, 3),
               Table::num(ours_rounds / trials),
               Table::num(known_rounds / trials),
               Table::num(ours_rounds / known_rounds, 3),
               Table::num(ours_ok / trials, 2),
               Table::num(known_ok / trials, 2)});
  }
  bench::print_report(
      "E12: price of not knowing tmix — paper vs Kutten et al. [25]", t,
      "ratios quantify the guess-and-double + exchange overhead; theory "
      "bounds the round ratio by O(log^2 n)");

  // The third option the paper rejects: estimate tmix distributedly first
  // (Molla & Pandurangan [29]-style, Omega(m) messages), then run the
  // known-tmix election with the estimate.
  Table t3({"graph", "m", "ours msgs", "estimate msgs", "est+elect msgs",
            "est+elect / ours", "tmix est vs exact"});
  for (const Case& c : cases) {
    const std::uint32_t exact =
        static_cast<std::uint32_t>(mixing_time_exact(c.g, 1u << 18));
    ElectionParams p;
    p.seed = 0xEC300;
    const ElectionResult ours = run_leader_election(c.g, p);
    const TmixEstimateResult est = run_tmix_estimator(c.g, 0, 0xEC301);
    const std::uint32_t est_t = est.converged ? est.estimate : exact;
    const KnownTmixResult k =
        run_known_tmix_election(c.g, 2 * est_t + 1, p);
    const double combined = double(est.totals.congest_messages) +
                            double(k.totals.congest_messages);
    t3.add_row({c.name, std::to_string(c.g.edge_count()),
                Table::num(double(ours.totals.congest_messages)),
                Table::num(double(est.totals.congest_messages)),
                Table::num(combined),
                Table::num(combined /
                           double(ours.totals.congest_messages), 3),
                Table::num(double(est_t), 3) + " vs " +
                    Table::num(double(exact), 3)});
  }
  bench::print_report(
      "E12b: estimate-then-elect (the [29] route the paper rejects)", t3,
      "the Omega(m) estimation fee makes est+elect lose on dense graphs — "
      "the reason the paper builds guess-and-double instead");
}

void BM_KnownTmix(benchmark::State& state) {
  const Graph g = make_hypercube(8);
  const std::uint32_t tmix =
      static_cast<std::uint32_t>(mixing_time_exact(g, 1u << 18));
  ElectionParams p;
  std::uint64_t msgs = 0;
  for (auto _ : state) {
    p.seed += 1;
    msgs = run_known_tmix_election(g, 2 * tmix, p).totals.congest_messages;
  }
  state.counters["congest_msgs"] = static_cast<double>(msgs);
}
BENCHMARK(BM_KnownTmix)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

WCLE_BENCH_MAIN(run_tables)
