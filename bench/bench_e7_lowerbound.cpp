// E7 — Theorem 15, the message lower bound Omega(sqrt(n)/phi^{3/4}).
// Two views, both on the Section-4.1 graph G(alpha):
//   (a) the election sweep over alpha is the builtin spec "e7"
//       (`wcle_cli sweep --spec=e7`, families lowerbound:<alpha>); this
//       binary adds the sandwich check: the measured messages must sit
//       above the Theorem 15 lower envelope sqrt(n)/phi^{3/4};
//   (b) the proof's mechanism: a message-budgeted neighborhood explorer
//       (each clique spends its budget probing random ports, as in Lemma 18)
//       discovers few inter-clique edges when the budget is o(n^{2eps}),
//       leaving the clique-communication graph CG shattered into components —
//       precisely the 0-or-many-leaders failure mode of Lemmas 19-25.
#include <benchmark/benchmark.h>

#include <cmath>
#include <functional>
#include <vector>

#include "bench_common.hpp"
#include "wcle/analysis/experiment.hpp"
#include "wcle/core/leader_election.hpp"
#include "wcle/graph/families.hpp"
#include "wcle/graph/lower_bound_graph.hpp"
#include "wcle/support/table.hpp"

namespace {

using namespace wcle;

/// Simulates Lemma 18's port-probing bound: each clique opens `budget` of its
/// ~s^2 ports uniformly at random; an inter-clique edge (4 per clique) is
/// found only if one of its ports is opened. Returns the number of connected
/// components of the resulting clique-communication graph CG.
std::uint64_t shattered_components(const LowerBoundGraph& lb,
                                   std::uint64_t budget_per_clique, Rng& rng) {
  const NodeId N = lb.num_cliques;
  const double total_ports = static_cast<double>(lb.clique_size) *
                             static_cast<double>(lb.clique_size - 1);
  const double p_find_one = std::min(
      1.0, static_cast<double>(budget_per_clique) / total_ports);
  // Union-find over cliques; each inter-clique edge is discovered if either
  // endpoint clique probes its port.
  std::vector<NodeId> parent(N);
  for (NodeId i = 0; i < N; ++i) parent[i] = i;
  std::function<NodeId(NodeId)> find = [&](NodeId x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  for (const Edge& e : lb.inter_clique_edges) {
    const bool found = rng.next_bool(p_find_one) || rng.next_bool(p_find_one);
    if (!found) continue;
    const NodeId a = find(lb.clique_of[e.a]), b = find(lb.clique_of[e.b]);
    if (a != b) parent[a] = b;
  }
  std::uint64_t components = 0;
  for (NodeId i = 0; i < N; ++i)
    if (find(i) == i) ++components;
  return components;
}

void run_tables() {
  // (a) the sweep plus the sandwich envelopes. The Theorem 13 upper
  // envelope needs each cell's tmix, so the graph is rebuilt from the
  // spec's (family, n, graph_seed) — by construction the same graph the
  // sweep ran on — and profiled.
  const ExperimentSpec spec = builtin_experiment("e7", bench::scale());
  const std::vector<CellResult> results = bench::run_spec(spec);
  Table t({"alpha", "n", "lower env", "msgs(mean)", "upper env",
           "msgs/lower", "msgs/upper"});
  for (const CellResult& r : results) {
    const double alpha = bench::alpha_of(r.cell.family);
    const double lower = theorem15_message_envelope(r.n, alpha);
    const Graph g = make_family(r.cell.family,
                                static_cast<NodeId>(r.cell.requested_n),
                                spec.graph_seed);
    const GraphProfile prof = profile_graph(g, 2);
    const double upper = theorem13_message_envelope(r.n, prof.tmix);
    t.add_row({Table::num(alpha, 3), std::to_string(r.n), Table::num(lower),
               Table::num(r.stats.congest_messages.mean), Table::num(upper),
               Table::num(r.stats.congest_messages.mean / lower, 3),
               Table::num(r.stats.congest_messages.mean / upper, 3)});
  }
  bench::print_report(
      "E7a (derived): Theorem 15 sandwich", t,
      "msgs/lower must stay >= 1 (no algorithm can beat the envelope) and "
      "msgs/upper <= O(1) (Theorem 13 bounds it from above)");

  // (b) the proof mechanism: budget vs CG shattering.
  const int sc = bench::scale();
  const NodeId n = sc >= 2 ? 1200 : (sc == 1 ? 700 : 500);
  Rng grng(0xE7999);
  const LowerBoundGraph lb = make_lower_bound_graph(n, 0.003, grng);
  const double s2 = static_cast<double>(lb.clique_size) *
                    static_cast<double>(lb.clique_size);
  Table t2({"budget/clique (x s^2)", "CG components (mean)", "shattered?"});
  for (const double frac : {0.01, 0.05, 0.25, 1.0, 4.0}) {
    const std::uint64_t budget = static_cast<std::uint64_t>(frac * s2);
    double comps = 0;
    const int reps = 20;
    Rng rng(0xE7B00);
    for (int i = 0; i < reps; ++i)
      comps += static_cast<double>(shattered_components(lb, budget, rng));
    comps /= reps;
    t2.add_row({Table::num(frac, 3), Table::num(comps, 4),
                comps > 1.5 ? "yes -> 0 or >=2 leaders" : "no"});
  }
  bench::print_report(
      "E7b: Lemmas 18-20 — message budget vs clique-graph shattering", t2,
      "budgets below ~s^2 = Theta(n^{2eps}) per clique leave CG disconnected "
      "(components > 1), forcing the 0-or-multiple-leader failure of the "
      "proof; budgets >= s^2 connect it");
}

void BM_LowerBoundElection(benchmark::State& state) {
  Rng grng(0xE7000);
  const LowerBoundGraph lb = make_lower_bound_graph(500, 0.006, grng);
  ElectionParams p;
  std::uint64_t msgs = 0;
  for (auto _ : state) {
    p.seed += 1;
    msgs = run_leader_election(lb.graph, p).totals.congest_messages;
  }
  state.counters["congest_msgs"] = static_cast<double>(msgs);
}
BENCHMARK(BM_LowerBoundElection)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

WCLE_BENCH_MAIN(run_tables)
