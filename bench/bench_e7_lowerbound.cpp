// E7 — Theorem 15, the message lower bound Omega(sqrt(n)/phi^{3/4}).
// Two views, both on the Section-4.1 graph G(alpha):
//   (a) our algorithm's measured messages against the lower-bound envelope
//       sqrt(n)/phi^{3/4} and the upper-bound envelope sqrt(n) polylog tmix —
//       the measurement must sit between them (sandwich);
//   (b) the proof's mechanism: a message-budgeted neighborhood explorer
//       (each clique spends its budget probing random ports, as in Lemma 18)
//       discovers few inter-clique edges when the budget is o(n^{2eps}),
//       leaving the clique-communication graph CG shattered into components —
//       precisely the 0-or-many-leaders failure mode of Lemmas 19-25.
#include <benchmark/benchmark.h>

#include <cmath>
#include <functional>
#include <vector>

#include "bench_common.hpp"
#include "wcle/analysis/experiment.hpp"
#include "wcle/core/leader_election.hpp"
#include "wcle/graph/lower_bound_graph.hpp"
#include "wcle/support/table.hpp"

namespace {

using namespace wcle;

/// Simulates Lemma 18's port-probing bound: each clique opens `budget` of its
/// ~s^2 ports uniformly at random; an inter-clique edge (4 per clique) is
/// found only if one of its ports is opened. Returns the number of connected
/// components of the resulting clique-communication graph CG.
std::uint64_t shattered_components(const LowerBoundGraph& lb,
                                   std::uint64_t budget_per_clique, Rng& rng) {
  const NodeId N = lb.num_cliques;
  const double total_ports = static_cast<double>(lb.clique_size) *
                             static_cast<double>(lb.clique_size - 1);
  const double p_find_one = std::min(
      1.0, static_cast<double>(budget_per_clique) / total_ports);
  // Union-find over cliques; each inter-clique edge is discovered if either
  // endpoint clique probes its port.
  std::vector<NodeId> parent(N);
  for (NodeId i = 0; i < N; ++i) parent[i] = i;
  std::function<NodeId(NodeId)> find = [&](NodeId x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  for (const Edge& e : lb.inter_clique_edges) {
    const bool found = rng.next_bool(p_find_one) || rng.next_bool(p_find_one);
    if (!found) continue;
    const NodeId a = find(lb.clique_of[e.a]), b = find(lb.clique_of[e.b]);
    if (a != b) parent[a] = b;
  }
  std::uint64_t components = 0;
  for (NodeId i = 0; i < N; ++i)
    if (find(i) == i) ++components;
  return components;
}

void run_tables() {
  const int sc = bench::scale();
  // Elections on G(alpha) are inherently expensive — that is the theorem —
  // so the sweep stays small: each run costs Theta(sqrt n polylog * tmix)
  // messages with tmix ~ 1/alpha^2 in the worst case.
  const NodeId n = sc >= 2 ? 1200 : (sc == 1 ? 700 : 500);
  const int trials = sc == 0 ? 1 : 2;

  // (a) sandwich: lower envelope <= measured <= upper envelope.
  Table t({"alpha", "n", "phi~alpha", "tmix", "lower env", "msgs(mean)",
           "upper env", "msgs/lower", "success"});
  for (const double alpha : {0.003, 0.006}) {
    Rng grng(0xE7000 + static_cast<std::uint64_t>(alpha * 1e6));
    const LowerBoundGraph lb = make_lower_bound_graph(n, alpha, grng);
    const GraphProfile prof = profile_graph(lb.graph, 2);
    ElectionParams p;
    const ElectionTrialStats stats =
        run_election_trials(lb.graph, p, trials, 0xE7100);
    const double lower =
        theorem15_message_envelope(lb.graph.node_count(), alpha);
    const double upper =
        theorem13_message_envelope(lb.graph.node_count(), prof.tmix);
    t.add_row({Table::num(alpha, 3), std::to_string(lb.graph.node_count()),
               Table::num(prof.sweep_conductance, 3),
               std::to_string(prof.tmix), Table::num(lower),
               Table::num(stats.congest_messages.mean), Table::num(upper),
               Table::num(stats.congest_messages.mean / lower, 3),
               Table::num(stats.success_rate, 2)});
  }
  bench::print_report(
      "E7a: Theorem 15 — measured messages vs Omega(sqrt(n)/phi^{3/4})", t,
      "msgs/lower must stay >= 1 (no algorithm can beat the envelope); the "
      "upper envelope bounds it from above");

  // (b) the proof mechanism: budget vs CG shattering.
  Rng grng(0xE7999);
  const LowerBoundGraph lb = make_lower_bound_graph(n, 0.003, grng);
  const double s2 = static_cast<double>(lb.clique_size) *
                    static_cast<double>(lb.clique_size);
  Table t2({"budget/clique (x s^2)", "CG components (mean)", "shattered?"});
  for (const double frac : {0.01, 0.05, 0.25, 1.0, 4.0}) {
    const std::uint64_t budget = static_cast<std::uint64_t>(frac * s2);
    double comps = 0;
    const int reps = 20;
    Rng rng(0xE7B00);
    for (int i = 0; i < reps; ++i)
      comps += static_cast<double>(shattered_components(lb, budget, rng));
    comps /= reps;
    t2.add_row({Table::num(frac, 3), Table::num(comps, 4),
                comps > 1.5 ? "yes -> 0 or >=2 leaders" : "no"});
  }
  bench::print_report(
      "E7b: Lemmas 18-20 — message budget vs clique-graph shattering", t2,
      "budgets below ~s^2 = Theta(n^{2eps}) per clique leave CG disconnected "
      "(components > 1), forcing the 0-or-multiple-leader failure of the "
      "proof; budgets >= s^2 connect it");
}

void BM_LowerBoundElection(benchmark::State& state) {
  Rng grng(0xE7000);
  const LowerBoundGraph lb = make_lower_bound_graph(500, 0.006, grng);
  ElectionParams p;
  std::uint64_t msgs = 0;
  for (auto _ : state) {
    p.seed += 1;
    msgs = run_leader_election(lb.graph, p).totals.congest_messages;
  }
  state.counters["congest_msgs"] = static_cast<double>(msgs);
}
BENCHMARK(BM_LowerBoundElection)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

WCLE_BENCH_MAIN(run_tables)
