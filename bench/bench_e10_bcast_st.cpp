// E10 — Corollaries 26/27: broadcast and spanning-tree construction need
// Omega(n / sqrt(phi)) messages.
// On G(alpha), any broadcast must discover all N = n^{1-eps} cliques at
// Omega(n^{2eps}) messages each. We run push-pull broadcast and BFS spanning
// tree on a sweep of alpha and report measured messages against the
// n/sqrt(phi) envelope: the ratio must stay >= a constant (no algorithm can
// go below the bound) and track its growth as alpha shrinks.
#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

#include "bench_common.hpp"
#include "wcle/baselines/bfs_tree.hpp"
#include "wcle/baselines/flood_broadcast.hpp"
#include "wcle/baselines/push_pull.hpp"
#include "wcle/graph/lower_bound_graph.hpp"
#include "wcle/support/table.hpp"

namespace {

using namespace wcle;

void run_tables() {
  const int sc = bench::scale();
  const NodeId n = sc >= 2 ? 3000 : (sc == 1 ? 1500 : 800);

  Table t({"alpha", "n", "envelope n/sqrt(phi)", "push-pull msgs",
           "pp/envelope", "flood msgs", "bfs-st msgs", "st/envelope"});
  for (const double alpha : {0.0015, 0.003, 0.006}) {
    Rng grng(0xEA000);
    const LowerBoundGraph lb = make_lower_bound_graph(n, alpha, grng);
    const double envelope =
        static_cast<double>(lb.graph.node_count()) / std::sqrt(alpha);
    const BroadcastResult pp =
        run_push_pull(lb.graph, {0}, 32, 0xEA100);
    const FloodBroadcastResult fb = run_flood_broadcast(lb.graph, 0, 32);
    const BfsTreeResult st = run_bfs_tree(lb.graph, 0);
    t.add_row({Table::num(alpha, 3), std::to_string(lb.graph.node_count()),
               Table::num(envelope),
               Table::num(double(pp.totals.congest_messages)),
               Table::num(double(pp.totals.congest_messages) / envelope, 3),
               Table::num(double(fb.totals.congest_messages)),
               Table::num(double(st.totals.congest_messages)),
               Table::num(double(st.totals.congest_messages) / envelope, 3)});
  }
  bench::print_report(
      "E10: Corollaries 26/27 — broadcast & spanning tree on G(alpha)", t,
      "both ratios must stay >= Omega(1): no broadcast or ST algorithm can "
      "beat n/sqrt(phi) on this family");
}

void BM_PushPullLowerBoundGraph(benchmark::State& state) {
  Rng grng(0xEA000);
  const LowerBoundGraph lb = make_lower_bound_graph(800, 0.003, grng);
  std::uint64_t msgs = 0, seed = 1;
  for (auto _ : state)
    msgs = run_push_pull(lb.graph, {0}, 32, seed++).totals.congest_messages;
  state.counters["congest_msgs"] = static_cast<double>(msgs);
}
BENCHMARK(BM_PushPullLowerBoundGraph)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

WCLE_BENCH_MAIN(run_tables)
