// E10 — Corollaries 26/27: broadcast and spanning-tree construction need
// Omega(n / sqrt(phi)) messages.
// On G(alpha), any broadcast must discover all N = n^{1-eps} cliques at
// Omega(n^{2eps}) messages each. The three-algorithm alpha sweep is the
// builtin spec "e10" (`wcle_cli sweep --spec=e10`); this binary normalizes
// every cell by the n/sqrt(phi) envelope: the ratio must stay >= a constant
// (no algorithm can go below the bound) and track its growth as alpha
// shrinks.
#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

#include "bench_common.hpp"
#include "wcle/baselines/push_pull.hpp"
#include "wcle/graph/lower_bound_graph.hpp"
#include "wcle/support/table.hpp"

namespace {

using namespace wcle;

void run_tables() {
  const std::vector<CellResult> results = bench::run_builtin("e10");
  Table t({"alpha", "n", "algorithm", "envelope n/sqrt(phi)",
           "msgs/envelope"});
  for (const CellResult& r : results) {
    const double alpha = bench::alpha_of(r.cell.family);
    const double envelope =
        static_cast<double>(r.n) / std::sqrt(alpha);
    t.add_row({Table::num(alpha, 3), std::to_string(r.n), r.cell.algorithm,
               Table::num(envelope),
               Table::num(r.stats.congest_messages.mean / envelope, 3)});
  }
  bench::print_report(
      "E10 (derived): Corollaries 26/27 normalization", t,
      "every ratio must stay >= Omega(1): no broadcast or ST algorithm can "
      "beat n/sqrt(phi) on this family");
}

void BM_PushPullLowerBoundGraph(benchmark::State& state) {
  Rng grng(0xEA000);
  const LowerBoundGraph lb = make_lower_bound_graph(800, 0.003, grng);
  std::uint64_t msgs = 0, seed = 1;
  for (auto _ : state)
    msgs = run_push_pull(lb.graph, {0}, 32, seed++).totals.congest_messages;
  state.counters["congest_msgs"] = static_cast<double>(msgs);
}
BENCHMARK(BM_PushPullLowerBoundGraph)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

WCLE_BENCH_MAIN(run_tables)
