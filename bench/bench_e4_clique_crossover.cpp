// E4 — cliques: sublinearity in m and the crossover against flooding.
// Paper: on constant-conductance graphs the algorithm nearly matches the
// Kutten et al. [25] Omega(sqrt n) bound and, combined with broadcast, breaks
// the Omega(m) bound of [24] for explicit election. We sweep cliques and
// compare against FloodMax (Theta(mD)) and CandidateFlood (Omega(m) regime):
// the paper's algorithm must win by a growing factor, with the crossover at
// small n where polylog constants still dominate.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench_common.hpp"
#include "wcle/analysis/experiment.hpp"
#include "wcle/baselines/candidate_flood.hpp"
#include "wcle/baselines/clique_referee.hpp"
#include "wcle/baselines/flood_max.hpp"
#include "wcle/graph/generators.hpp"
#include "wcle/support/table.hpp"

namespace {

using namespace wcle;

void run_tables() {
  const int sc = bench::scale();
  std::vector<NodeId> sizes{64, 128, 256, 512};
  if (sc >= 1) sizes.push_back(1024);
  if (sc >= 2) sizes.push_back(2048);
  const int trials = sc == 0 ? 3 : 5;

  Table t({"n", "m", "ours(msgs)", "referee[25](msgs)", "cand_flood(msgs)",
           "flood_max(msgs)", "ours/m", "flood/ours", "success"});
  for (const NodeId n : sizes) {
    const Graph g = make_clique(n);
    ElectionParams p;
    const ElectionTrialStats ours = run_election_trials(g, p, trials, n);
    double referee = 0, cand = 0, fmax = 0;
    for (int s = 0; s < trials; ++s) {
      ElectionParams rp;
      rp.seed = n + static_cast<std::uint64_t>(s);
      referee += static_cast<double>(
          run_clique_referee(g, rp).totals.congest_messages);
      cand += static_cast<double>(
          run_candidate_flood(g, n + s).totals.congest_messages);
      fmax += static_cast<double>(
          run_flood_max(g, n + s).totals.congest_messages);
    }
    referee /= trials;
    cand /= trials;
    fmax /= trials;
    t.add_row({std::to_string(n), std::to_string(g.edge_count()),
               Table::num(ours.congest_messages.mean), Table::num(referee),
               Table::num(cand), Table::num(fmax),
               Table::num(ours.congest_messages.mean /
                          static_cast<double>(g.edge_count())),
               Table::num(cand / ours.congest_messages.mean),
               Table::num(ours.success_rate, 2)});
  }
  bench::print_report(
      "E4: cliques — sublinearity in m, crossover vs Omega(m) flooding", t,
      "ours/m must shrink toward 0; flood/ours must grow past 1 (crossover); "
      "referee[25] is the specialized clique algorithm ours generalizes — it "
      "stays cheaper by the walk/exchange polylogs");
}

void BM_CliqueOursVsFlood(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  const Graph g = make_clique(n);
  ElectionParams p;
  std::uint64_t ours = 0, flood = 0;
  for (auto _ : state) {
    p.seed += 1;
    ours = run_leader_election(g, p).totals.congest_messages;
    flood = run_candidate_flood(g, p.seed).totals.congest_messages;
  }
  state.counters["ours"] = static_cast<double>(ours);
  state.counters["flood"] = static_cast<double>(flood);
}
BENCHMARK(BM_CliqueOursVsFlood)->Arg(256)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

WCLE_BENCH_MAIN(run_tables)
