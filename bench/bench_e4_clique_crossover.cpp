// E4 — cliques: sublinearity in m and the crossover against flooding.
// Paper: on constant-conductance graphs the algorithm nearly matches the
// Kutten et al. [25] Omega(sqrt n) bound and, combined with broadcast, breaks
// the Omega(m) bound of [24] for explicit election. The four-algorithm
// clique sweep is the builtin spec "e4" (`wcle_cli sweep --spec=e4`); this
// binary derives the ours/m and flood/ours crossover ratios from the cells.
#include <benchmark/benchmark.h>

#include <map>
#include <vector>

#include "bench_common.hpp"
#include "wcle/baselines/candidate_flood.hpp"
#include "wcle/core/leader_election.hpp"
#include "wcle/graph/generators.hpp"
#include "wcle/support/table.hpp"

namespace {

using namespace wcle;

void run_tables() {
  const std::vector<CellResult> results = bench::run_builtin("e4");
  // Regroup cells by n: ours vs the flooding baselines on the same clique.
  std::map<std::uint64_t, std::map<std::string, double>> by_n;
  std::map<std::uint64_t, double> edges;
  for (const CellResult& r : results) {
    by_n[r.n][r.cell.algorithm] = r.stats.congest_messages.mean;
    edges[r.n] = static_cast<double>(r.m);
  }
  Table t({"n", "ours/m", "cand_flood/ours", "flood_max/ours",
           "referee[25]/ours"});
  for (const auto& [n, algos] : by_n) {
    const double ours = algos.at("election");
    t.add_row({std::to_string(n), Table::num(ours / edges.at(n), 3),
               Table::num(algos.at("candidate_flood") / ours, 3),
               Table::num(algos.at("flood_max") / ours, 3),
               Table::num(algos.at("clique_referee") / ours, 3)});
  }
  bench::print_report(
      "E4 (derived): sublinearity and crossover ratios", t,
      "ours/m must shrink toward 0; the flooding ratios must grow past 1 "
      "(crossover); referee[25] stays cheaper by the walk/exchange polylogs");
}

void BM_CliqueOursVsFlood(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  const Graph g = make_clique(n);
  ElectionParams p;
  std::uint64_t ours = 0, flood = 0;
  for (auto _ : state) {
    p.seed += 1;
    ours = run_leader_election(g, p).totals.congest_messages;
    flood = run_candidate_flood(g, p.seed).totals.congest_messages;
  }
  state.counters["ours"] = static_cast<double>(ours);
  state.counters["flood"] = static_cast<double>(flood);
}
BENCHMARK(BM_CliqueOursVsFlood)->Arg(256)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

WCLE_BENCH_MAIN(run_tables)
