// E14 — the fault sweep. The claim being charted: which election survives
// what. Crash-stop batches (random / hub-targeted / contender-targeted),
// failed links, and the verdict layer's safety/liveness/agreement rates for
// the paper's election against six baselines, all under identical seeded
// conditions. The builtin spec "e14" (`wcle_cli sweep --spec=e14`) is the
// whole grid; the google-benchmark case times the headline worst case — the
// contender-targeted crash batch against the core election.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "wcle/api/registry.hpp"
#include "wcle/graph/families.hpp"

namespace {

using namespace wcle;

void run_tables() { bench::run_builtin("e14"); }

void BM_ElectionUnderContenderCrash(benchmark::State& state) {
  const Graph g = make_family("expander", 256, 0xE14);
  const Algorithm& a = AlgorithmRegistry::instance().at("election");
  RunOptions options;
  options.params.max_length = 256;
  options.params.faults.crash_fraction = 0.3;
  options.params.faults.adversary = "contenders";
  std::uint64_t crash_dropped = 0;
  for (auto _ : state) {
    options.set_seed(options.seed() + 1);
    crash_dropped = a.run(g, options).totals.crash_dropped_messages;
  }
  state.counters["crash_dropped"] = static_cast<double>(crash_dropped);
}
BENCHMARK(BM_ElectionUnderContenderCrash)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

WCLE_BENCH_MAIN(run_tables)
