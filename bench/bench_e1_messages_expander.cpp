// E1 — Theorem 13, message complexity on expanders.
// Paper: implicit leader election costs O(sqrt(n) log^{7/2} n * tmix) CONGEST
// messages; on expanders (tmix = O(log n)) that is O~(sqrt n) — sublinear in
// both n and m. This bench sweeps random 6-regular graphs, reports measured
// CONGEST messages against the Theorem-13 envelope and the edge count, and
// fits the empirical growth exponent of messages in n (should be ~0.5 + o(1);
// the polylog factors push it slightly above 0.5 at these sizes).
#include <benchmark/benchmark.h>

#include <vector>

#include "bench_common.hpp"
#include "wcle/analysis/experiment.hpp"
#include "wcle/graph/generators.hpp"
#include "wcle/support/stats.hpp"
#include "wcle/support/table.hpp"

namespace {

using namespace wcle;

void run_tables() {
  const int sc = bench::scale();
  std::vector<NodeId> sizes{256, 512, 1024};
  if (sc >= 1) sizes.push_back(2048);
  if (sc >= 2) {
    sizes.push_back(4096);
    sizes.push_back(8192);
  }
  const int trials = sc == 0 ? 3 : 5;

  Table t({"n", "m", "tmix", "msgs(mean)", "msgs(max)", "envelope",
           "msgs/envelope", "msgs/m", "success"});
  std::vector<double> xs, ys;
  for (const NodeId n : sizes) {
    Rng grng(0xE1000 + n);
    const Graph g = make_random_regular(n, 6, grng);
    const GraphProfile prof = profile_graph(g, 2);
    ElectionParams p;
    const ElectionTrialStats stats = run_election_trials(g, p, trials, n);
    const double envelope = theorem13_message_envelope(n, prof.tmix);
    t.add_row({std::to_string(n), std::to_string(g.edge_count()),
               std::to_string(prof.tmix),
               Table::num(stats.congest_messages.mean),
               Table::num(stats.congest_messages.max), Table::num(envelope),
               Table::num(stats.congest_messages.mean / envelope),
               Table::num(stats.congest_messages.mean /
                          static_cast<double>(g.edge_count())),
               Table::num(stats.success_rate, 2)});
    xs.push_back(static_cast<double>(n));
    ys.push_back(stats.congest_messages.mean);
  }
  const LineFit fit = fit_power_law(xs, ys);
  bench::print_report(
      "E1: Theorem 13 — messages on 6-regular expanders",
      t,
      "empirical exponent: messages ~ n^" + Table::num(fit.slope, 3) +
          "  (theory: 0.5 + polylog; msgs/envelope should be flat-ish, "
          "msgs/m shrinking)");
}

void BM_ElectionExpander(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng grng(0xE1000 + n);
  const Graph g = make_random_regular(n, 6, grng);
  ElectionParams p;
  std::uint64_t msgs = 0, rounds = 0;
  for (auto _ : state) {
    p.seed += 1;
    const ElectionResult r = run_leader_election(g, p);
    msgs = r.totals.congest_messages;
    rounds = r.totals.rounds;
    benchmark::DoNotOptimize(r.leaders);
  }
  state.counters["congest_msgs"] = static_cast<double>(msgs);
  state.counters["rounds"] = static_cast<double>(rounds);
}
BENCHMARK(BM_ElectionExpander)->Arg(256)->Arg(1024)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

WCLE_BENCH_MAIN(run_tables)
