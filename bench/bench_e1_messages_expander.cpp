// E1 — Theorem 13, message complexity on expanders.
// Paper: implicit leader election costs O(sqrt(n) log^{7/2} n * tmix) CONGEST
// messages; on expanders (tmix = O(log n)) that is O~(sqrt n) — sublinear in
// both n and m. The sweep itself is declarative (builtin spec "e1",
// reproducible via `wcle_cli sweep --spec=e1`); this binary adds the
// empirical growth-exponent fit (should be ~0.5 + o(1)).
#include <benchmark/benchmark.h>

#include <vector>

#include "bench_common.hpp"
#include "wcle/core/leader_election.hpp"
#include "wcle/graph/generators.hpp"
#include "wcle/support/stats.hpp"
#include "wcle/support/table.hpp"

namespace {

using namespace wcle;

void run_tables() {
  const std::vector<CellResult> results = bench::run_builtin("e1");
  std::vector<double> xs, ys, ratios;
  for (const CellResult& r : results) {
    xs.push_back(static_cast<double>(r.n));
    ys.push_back(r.stats.congest_messages.mean);
    ratios.push_back(r.stats.congest_messages.mean /
                     static_cast<double>(r.m));
  }
  const LineFit fit = fit_power_law(xs, ys);
  std::cout << "empirical exponent: messages ~ n^" << Table::num(fit.slope, 3)
            << "  (theory: 0.5 + polylog); msgs/m "
            << Table::num(ratios.front(), 3) << " -> "
            << Table::num(ratios.back(), 3)
            << " (must shrink: sublinear in m)\n";
}

void BM_ElectionExpander(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng grng(0xE1000 + n);
  const Graph g = make_random_regular(n, 6, grng);
  ElectionParams p;
  std::uint64_t msgs = 0, rounds = 0;
  for (auto _ : state) {
    p.seed += 1;
    const ElectionResult r = run_leader_election(g, p);
    msgs = r.totals.congest_messages;
    rounds = r.totals.rounds;
    benchmark::DoNotOptimize(r.leaders);
  }
  state.counters["congest_msgs"] = static_cast<double>(msgs);
  state.counters["rounds"] = static_cast<double>(rounds);
}
BENCHMARK(BM_ElectionExpander)->Arg(256)->Arg(1024)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

WCLE_BENCH_MAIN(run_tables)
