// E11 — Theorem 28: without knowledge of n, leader election costs Omega(m).
// The correct-n elections on dumbbells are the builtin spec "e11"
// (`wcle_cli sweep --spec=e11`, families dumbbell:<base>). The proof's
// engine — indistinguishability until a bridge crossing — is not
// sweep-shaped, so this binary keeps the supplemental demonstration:
//   (a) wrong-n split brain: running the paper's algorithm per side (the
//       behavior indistinguishability forces) yields 2 leaders overall;
//   (b) bridge-crossing cost: random port probing from within one side needs
//       ~m/2 probes in expectation to find a bridge port (Lemma 18's
//       argument specialized to the two bridge edges among 2m ports).
#include <benchmark/benchmark.h>

#include <vector>

#include "bench_common.hpp"
#include "wcle/core/leader_election.hpp"
#include "wcle/graph/dumbbell.hpp"
#include "wcle/graph/generators.hpp"
#include "wcle/support/table.hpp"

namespace {

using namespace wcle;

void run_tables() {
  bench::run_builtin("e11");

  const int sc = bench::scale();
  struct Case {
    const char* name;
    Graph base;
  };
  std::vector<Case> cases;
  cases.push_back({"torus_8x8", make_torus(8, 8)});
  cases.push_back({"hypercube_64", make_hypercube(6)});
  if (sc >= 1) {
    Rng grng(0xEB001);
    cases.push_back({"expander6_128", make_random_regular(128, 6, grng)});
    cases.push_back({"torus_12x12", make_torus(12, 12)});
  }

  Table t({"base G0", "m(dumbbell)", "split-brain leaders", "true-n leaders",
           "E[probes to cross bridge]", "~m/2"});
  for (const Case& c : cases) {
    Rng drng(0xEB100);
    const DumbbellGraph d = make_random_dumbbell(c.base, drng);

    // (a) wrong n: each side runs believing n = |G0| — by Observation 31 the
    // two halves behave exactly as two independent runs on G0.
    ElectionParams p;
    p.seed = 0xEB200;
    const ElectionResult left = run_leader_election(c.base, p);
    p.seed = 0xEB201;
    const ElectionResult right = run_leader_election(c.base, p);
    const std::size_t split = left.leaders.size() + right.leaders.size();

    // (b) true n on the dumbbell.
    p.seed = 0xEB202;
    const ElectionResult whole = run_leader_election(d.graph, p);

    // (c) expected probes to hit one of the 2 bridge ports among ~2m ports
    // when probing previously-unprobed ports uniformly (hypergeometric mean).
    const double ports = 2.0 * static_cast<double>(d.graph.edge_count());
    const double expected_probes = (ports + 1.0) / 3.0;  // E[min of 2 of N]

    t.add_row({c.name, std::to_string(d.graph.edge_count()),
               std::to_string(split), std::to_string(whole.leaders.size()),
               Table::num(expected_probes),
               Table::num(static_cast<double>(d.graph.edge_count()) / 2.0)});
  }
  bench::print_report(
      "E11b: Theorem 28 — unknown n forces Omega(m) (dumbbell split brain)",
      t,
      "split-brain leaders = 2 (one per indistinguishable half); true-n "
      "leaders = 1; bridge discovery costs Theta(m) port probes");
}

void BM_DumbbellElection(benchmark::State& state) {
  const Graph base = make_torus(8, 8);
  Rng drng(0xEB100);
  const DumbbellGraph d = make_random_dumbbell(base, drng);
  ElectionParams p;
  std::uint64_t msgs = 0;
  for (auto _ : state) {
    p.seed += 1;
    msgs = run_leader_election(d.graph, p).totals.congest_messages;
  }
  state.counters["congest_msgs"] = static_cast<double>(msgs);
}
BENCHMARK(BM_DumbbellElection)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

WCLE_BENCH_MAIN(run_tables)
