// E3 — Theorem 13 on hypercubes.
// Paper: hypercubes have tmix = O(log n log log n), so election takes
// O(log^3 n log log n) time and O(sqrt(n) log^{9/2} n log log n) messages.
// Sweep dimensions, report messages/rounds vs the hypercube-specialized
// envelopes.
#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

#include "bench_common.hpp"
#include "wcle/analysis/experiment.hpp"
#include "wcle/graph/generators.hpp"
#include "wcle/support/table.hpp"

namespace {

using namespace wcle;

void run_tables() {
  const int sc = bench::scale();
  std::vector<std::uint32_t> dims{7, 8, 9};
  if (sc >= 1) dims.push_back(10);
  if (sc >= 2) dims.push_back(11);
  const int trials = sc == 0 ? 3 : 5;

  Table t({"dim", "n", "tmix", "msgs(mean)", "rounds(mean)", "msg_envelope",
           "time_envelope", "msgs/envelope", "success"});
  for (const std::uint32_t dim : dims) {
    const Graph g = make_hypercube(dim);
    const NodeId n = g.node_count();
    const GraphProfile prof = profile_graph(g, 2);
    ElectionParams p;
    const ElectionTrialStats stats = run_election_trials(g, p, trials, dim);
    const double lg = std::log2(static_cast<double>(n));
    const double msg_env = std::sqrt(static_cast<double>(n)) *
                           std::pow(lg, 4.5) * std::log2(lg + 1.0);
    const double time_env = std::pow(lg, 3.0) * std::log2(lg + 1.0);
    t.add_row({std::to_string(dim), std::to_string(n),
               std::to_string(prof.tmix),
               Table::num(stats.congest_messages.mean),
               Table::num(stats.rounds.mean), Table::num(msg_env),
               Table::num(time_env),
               Table::num(stats.congest_messages.mean / msg_env),
               Table::num(stats.success_rate, 2)});
  }
  bench::print_report(
      "E3: Theorem 13 on hypercubes (tmix = O(log n log log n))", t,
      "msgs/envelope flat-ish across dims confirms the hypercube corollary");
}

void BM_ElectionHypercube(benchmark::State& state) {
  const Graph g = make_hypercube(static_cast<std::uint32_t>(state.range(0)));
  ElectionParams p;
  std::uint64_t msgs = 0;
  for (auto _ : state) {
    p.seed += 1;
    msgs = run_leader_election(g, p).totals.congest_messages;
  }
  state.counters["congest_msgs"] = static_cast<double>(msgs);
}
BENCHMARK(BM_ElectionHypercube)->Arg(8)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

WCLE_BENCH_MAIN(run_tables)
