// E3 — Theorem 13 on hypercubes.
// Paper: hypercubes have tmix = O(log n log log n), so election takes
// O(log^3 n log log n) time and O(sqrt(n) log^{9/2} n log log n) messages.
// The dimension sweep is the builtin spec "e3" (`wcle_cli sweep --spec=e3`);
// this binary normalizes the measured messages by the hypercube-specialized
// envelope (the ratio must stay flat-ish across dims).
#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

#include "bench_common.hpp"
#include "wcle/core/leader_election.hpp"
#include "wcle/graph/generators.hpp"
#include "wcle/support/table.hpp"

namespace {

using namespace wcle;

void run_tables() {
  const std::vector<CellResult> results = bench::run_builtin("e3");
  Table t({"n", "msg_envelope", "msgs/envelope", "time_envelope"});
  for (const CellResult& r : results) {
    const double lg = std::log2(static_cast<double>(r.n));
    const double msg_env = std::sqrt(static_cast<double>(r.n)) *
                           std::pow(lg, 4.5) * std::log2(lg + 1.0);
    const double time_env = std::pow(lg, 3.0) * std::log2(lg + 1.0);
    t.add_row({std::to_string(r.n), Table::num(msg_env),
               Table::num(r.stats.congest_messages.mean / msg_env, 3),
               Table::num(time_env)});
  }
  bench::print_report(
      "E3 (derived): hypercube corollary envelopes", t,
      "msgs/envelope flat-ish across dims confirms the hypercube corollary");
}

void BM_ElectionHypercube(benchmark::State& state) {
  const Graph g = make_hypercube(static_cast<std::uint32_t>(state.range(0)));
  ElectionParams p;
  std::uint64_t msgs = 0;
  for (auto _ : state) {
    p.seed += 1;
    msgs = run_leader_election(g, p).totals.congest_messages;
  }
  state.counters["congest_msgs"] = static_cast<double>(msgs);
}
BENCHMARK(BM_ElectionHypercube)->Arg(8)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

WCLE_BENCH_MAIN(run_tables)
