// E8 — Lemma 16 / Figures 1-2: phi(G(alpha)) = Theta(alpha).
// Sweeps alpha for fixed target n, reporting the sweep-cut conductance (an
// upper bound on phi found by spectral partitioning — in this graph it finds
// the inter-clique bottleneck), the Cheeger bounds, and the analytic value
// of the whole-clique cut (4 inter-clique edges / clique volume), which the
// proof of Claim 17 shows is the optimal cut shape.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench_common.hpp"
#include "wcle/graph/lower_bound_graph.hpp"
#include "wcle/graph/spectral.hpp"
#include "wcle/support/table.hpp"

namespace {

using namespace wcle;

void run_tables() {
  const int sc = bench::scale();
  const NodeId n = sc >= 2 ? 4000 : (sc == 1 ? 2000 : 800);

  Table t({"alpha", "eps", "cliques N", "clique size s", "sweep phi",
           "cheeger lo", "cheeger hi", "sweep/alpha"});
  for (const double alpha : {0.001, 0.002, 0.004, 0.006}) {
    Rng grng(0xE8000);
    const LowerBoundGraph lb = make_lower_bound_graph(n, alpha, grng);
    const double sweep = conductance_sweep(lb.graph, 3000);
    const CheegerBounds cb = cheeger_bounds(spectral_gap(lb.graph, 3000));
    t.add_row({Table::num(alpha, 3), Table::num(lb.epsilon, 3),
               std::to_string(lb.num_cliques), std::to_string(lb.clique_size),
               Table::num(sweep, 4), Table::num(cb.lower, 4),
               Table::num(cb.upper, 4), Table::num(sweep / alpha, 3)});
  }
  bench::print_report(
      "E8: Lemma 16 — conductance of the lower-bound graph is Theta(alpha)",
      t, "sweep/alpha must stay within a constant band across the sweep");

  // Claim 17 illustration: the minimum whole-clique cut vs clique-splitting.
  Rng grng(0xE8010);
  const LowerBoundGraph lb = make_lower_bound_graph(n, 0.004, grng);
  std::vector<char> one_clique(lb.graph.node_count(), 0);
  for (NodeId v = 0; v < lb.clique_size; ++v) one_clique[v] = 1;
  std::vector<char> half_clique(lb.graph.node_count(), 0);
  for (NodeId v = 0; v < lb.clique_size / 2; ++v) half_clique[v] = 1;
  Table t2({"cut shape", "conductance"});
  t2.add_row({"whole clique (only inter-clique edges cut)",
              Table::num(cut_conductance(lb.graph, one_clique), 4)});
  t2.add_row({"half clique (cut passes through a clique)",
              Table::num(cut_conductance(lb.graph, half_clique), 4)});
  bench::print_report(
      "E8b: Claim 17 — optimal cuts avoid the cliques", t2,
      "the whole-clique cut must be far cheaper than any clique-splitting cut");
}

void BM_ConductanceSweep(benchmark::State& state) {
  Rng grng(0xE8000);
  const LowerBoundGraph lb = make_lower_bound_graph(1000, 0.004, grng);
  double phi = 0;
  for (auto _ : state) phi = conductance_sweep(lb.graph, 1500);
  state.counters["phi"] = phi;
}
BENCHMARK(BM_ConductanceSweep)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

WCLE_BENCH_MAIN(run_tables)
