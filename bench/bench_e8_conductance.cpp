// E8 — Lemma 16 / Figures 1-2: phi(G(alpha)) = Theta(alpha).
// The alpha sweep is the builtin spec "e8" (`wcle_cli sweep --spec=e8`): the
// registered `graph_profile` diagnostic reports the sweep-cut conductance,
// the Cheeger bounds, and the tmix estimate per lowerbound:<alpha> family.
// This binary adds the sweep/alpha normalization and the Claim 17
// illustration (the optimal cut avoids the cliques).
#include <benchmark/benchmark.h>

#include <vector>

#include "bench_common.hpp"
#include "wcle/graph/lower_bound_graph.hpp"
#include "wcle/graph/spectral.hpp"
#include "wcle/support/table.hpp"

namespace {

using namespace wcle;

void run_tables() {
  const std::vector<CellResult> results = bench::run_builtin("e8");
  Table t({"alpha", "sweep_phi/alpha"});
  for (const CellResult& r : results) {
    const double alpha = bench::alpha_of(r.cell.family);
    const auto phi = r.stats.extras.find("sweep_phi");
    if (phi == r.stats.extras.end()) continue;
    t.add_row({Table::num(alpha, 3), Table::num(phi->second.mean / alpha, 3)});
  }
  bench::print_report(
      "E8 (derived): Lemma 16 normalization", t,
      "sweep_phi/alpha must stay within a constant band across the sweep");

  // Claim 17 illustration: the minimum whole-clique cut vs clique-splitting.
  const int sc = bench::scale();
  const NodeId n = sc >= 2 ? 4000 : (sc == 1 ? 2000 : 800);
  Rng grng(0xE8010);
  const LowerBoundGraph lb = make_lower_bound_graph(n, 0.004, grng);
  std::vector<char> one_clique(lb.graph.node_count(), 0);
  for (NodeId v = 0; v < lb.clique_size; ++v) one_clique[v] = 1;
  std::vector<char> half_clique(lb.graph.node_count(), 0);
  for (NodeId v = 0; v < lb.clique_size / 2; ++v) half_clique[v] = 1;
  Table t2({"cut shape", "conductance"});
  t2.add_row({"whole clique (only inter-clique edges cut)",
              Table::num(cut_conductance(lb.graph, one_clique), 4)});
  t2.add_row({"half clique (cut passes through a clique)",
              Table::num(cut_conductance(lb.graph, half_clique), 4)});
  bench::print_report(
      "E8b: Claim 17 — optimal cuts avoid the cliques", t2,
      "the whole-clique cut must be far cheaper than any clique-splitting cut");
}

void BM_ConductanceSweep(benchmark::State& state) {
  Rng grng(0xE8000);
  const LowerBoundGraph lb = make_lower_bound_graph(1000, 0.004, grng);
  double phi = 0;
  for (auto _ : state) phi = conductance_sweep(lb.graph, 1500);
  state.counters["phi"] = phi;
}
BENCHMARK(BM_ConductanceSweep)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

WCLE_BENCH_MAIN(run_tables)
